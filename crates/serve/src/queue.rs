//! Bounded job queue with admission control and family batching.
//!
//! Arrivals past the configured depth are **rejected** at the door
//! ([`AdmissionPolicy::Reject`]) or admitted by **shedding** the oldest
//! queued job ([`AdmissionPolicy::ShedOldest`]); either way the queue never
//! grows past its bound and a full engine answers immediately instead of
//! wedging.  Dequeues pull the oldest job plus up to `max_batch - 1`
//! same-family jobs from anywhere in the queue, so one worker pass reuses
//! one warm family state across the whole batch.

use crate::scenario::{SolveOutcome, SolveRequest};
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// What to do with an arrival when the queue is at its depth bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Refuse the new arrival; the submitter gets an immediate error.
    #[default]
    Reject,
    /// Admit the new arrival and drop the oldest queued job (its handle
    /// resolves to [`SolveOutcome::Shed`]).
    ShedOldest,
}

/// Queue counters (monotonic since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs admitted into the queue.
    pub admitted: u64,
    /// Arrivals refused by [`AdmissionPolicy::Reject`].
    pub rejected: u64,
    /// Queued jobs dropped by [`AdmissionPolicy::ShedOldest`].
    pub shed: u64,
    /// High-water mark of the queue depth.
    pub max_depth: u64,
}

/// One admitted job: the request, its admission timestamp, and the channel
/// its outcome is delivered on.
#[derive(Debug)]
pub(crate) struct Job {
    pub req: SolveRequest,
    pub enqueued_at: Instant,
    pub tx: Sender<SolveOutcome>,
}

struct Inner {
    jobs: VecDeque<Job>,
    open: bool,
    stats: QueueStats,
}

/// The bounded, policy-guarded job queue.
pub(crate) struct JobQueue {
    depth: usize,
    policy: AdmissionPolicy,
    inner: Mutex<Inner>,
    notify: Condvar,
}

impl JobQueue {
    pub fn new(depth: usize, policy: AdmissionPolicy) -> Self {
        Self {
            depth: depth.max(1),
            policy,
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                open: true,
                stats: QueueStats::default(),
            }),
            notify: Condvar::new(),
        }
    }

    /// Admit `job` or refuse it.  Returns the job back on refusal (closed
    /// queue or `Reject` at depth) so the caller can surface the error
    /// without losing the request.
    #[allow(clippy::result_large_err)] // Err hands the whole job back by design
    pub fn submit(&self, job: Job) -> Result<(), Job> {
        let mut g = self.inner.lock().unwrap();
        if !g.open {
            return Err(job);
        }
        if g.jobs.len() >= self.depth {
            match self.policy {
                AdmissionPolicy::Reject => {
                    g.stats.rejected += 1;
                    return Err(job);
                }
                AdmissionPolicy::ShedOldest => {
                    if let Some(victim) = g.jobs.pop_front() {
                        g.stats.shed += 1;
                        // A dropped receiver just means nobody is waiting.
                        let _ = victim.tx.send(SolveOutcome::Shed);
                    }
                }
            }
        }
        g.jobs.push_back(job);
        g.stats.admitted += 1;
        g.stats.max_depth = g.stats.max_depth.max(g.jobs.len() as u64);
        drop(g);
        self.notify.notify_one();
        Ok(())
    }

    /// Block until a job is available (or the queue is closed and drained),
    /// then return the oldest job together with up to `max_batch - 1`
    /// same-family jobs extracted from anywhere in the queue, oldest first.
    pub fn next_batch(&self, max_batch: usize) -> Option<Vec<Job>> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(first) = g.jobs.pop_front() {
                let mut batch = vec![first];
                let key = batch[0].req.scenario.key();
                let max_batch = max_batch.max(1);
                let mut i = 0;
                while i < g.jobs.len() && batch.len() < max_batch {
                    if g.jobs[i].req.scenario.key() == key {
                        batch.push(g.jobs.remove(i).unwrap());
                    } else {
                        i += 1;
                    }
                }
                return Some(batch);
            }
            if !g.open {
                return None;
            }
            g = self.notify.wait(g).unwrap();
        }
    }

    /// Close the queue: refuse new arrivals, wake all workers.  Queued jobs
    /// still drain.
    pub fn close(&self) {
        self.inner.lock().unwrap().open = false;
        self.notify.notify_all();
    }

    /// Current depth (for tests and status lines).
    pub fn depth_now(&self) -> usize {
        self.inner.lock().unwrap().jobs.len()
    }

    /// Current counters.
    pub fn stats(&self) -> QueueStats {
        self.inner.lock().unwrap().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioClass;
    use crate::test_support::{tiny_nks, tiny_scenario};
    use std::sync::mpsc::channel;

    fn job(id: u64, sc: &ScenarioClass) -> (Job, std::sync::mpsc::Receiver<SolveOutcome>) {
        let (tx, rx) = channel();
        (
            Job {
                req: SolveRequest {
                    id,
                    scenario: sc.clone(),
                    nks: tiny_nks(),
                },
                enqueued_at: Instant::now(),
                tx,
            },
            rx,
        )
    }

    #[test]
    fn reject_policy_bounces_arrivals_at_depth() {
        let q = JobQueue::new(2, AdmissionPolicy::Reject);
        let sc = tiny_scenario();
        assert!(q.submit(job(0, &sc).0).is_ok());
        assert!(q.submit(job(1, &sc).0).is_ok());
        let bounced = q.submit(job(2, &sc).0);
        assert!(bounced.is_err());
        assert_eq!(bounced.unwrap_err().req.id, 2);
        let s = q.stats();
        assert_eq!((s.admitted, s.rejected, s.shed), (2, 1, 0));
        assert_eq!(s.max_depth, 2);
        assert_eq!(q.depth_now(), 2);
    }

    #[test]
    fn shed_policy_drops_the_oldest_and_resolves_its_handle() {
        let q = JobQueue::new(2, AdmissionPolicy::ShedOldest);
        let sc = tiny_scenario();
        let (j0, rx0) = job(0, &sc);
        q.submit(j0).unwrap();
        q.submit(job(1, &sc).0).unwrap();
        q.submit(job(2, &sc).0).unwrap();
        assert!(matches!(rx0.recv().unwrap(), SolveOutcome::Shed));
        let s = q.stats();
        assert_eq!((s.admitted, s.rejected, s.shed), (3, 0, 1));
        assert_eq!(q.depth_now(), 2);
        // The survivors are the two newest.
        let batch = q.next_batch(8).unwrap();
        assert_eq!(
            batch.iter().map(|j| j.req.id).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn batches_group_same_family_jobs_preserving_order() {
        let q = JobQueue::new(16, AdmissionPolicy::Reject);
        let a = tiny_scenario();
        let mut b = tiny_scenario();
        b.mesh.nx += 1;
        for (id, sc) in [(0, &a), (1, &b), (2, &a), (3, &b), (4, &a)] {
            q.submit(job(id, sc).0).unwrap();
        }
        let first = q.next_batch(8).unwrap();
        assert_eq!(
            first.iter().map(|j| j.req.id).collect::<Vec<_>>(),
            vec![0, 2, 4],
            "family-a jobs batch together, oldest first"
        );
        let second = q.next_batch(8).unwrap();
        assert_eq!(
            second.iter().map(|j| j.req.id).collect::<Vec<_>>(),
            vec![1, 3]
        );
        // max_batch caps the pull.
        q.submit(job(5, &a).0).unwrap();
        q.submit(job(6, &a).0).unwrap();
        let capped = q.next_batch(1).unwrap();
        assert_eq!(capped.len(), 1);
    }

    #[test]
    fn shed_oldest_stays_bounded_under_concurrent_submitters() {
        // Many threads hammering a tiny ShedOldest queue: every arrival is
        // admitted (never an error), the depth bound holds, accounting
        // balances exactly, and every shed handle resolves to Shed.
        use std::sync::Arc;
        const NTHREADS: usize = 4;
        const PER: usize = 25;
        const TOTAL: u64 = (NTHREADS * PER) as u64;
        let q = Arc::new(JobQueue::new(4, AdmissionPolicy::ShedOldest));
        let rx_bins: Vec<_> = (0..NTHREADS)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let sc = tiny_scenario();
                    let mut rxs = Vec::with_capacity(PER);
                    for i in 0..PER {
                        let (j, rx) = job((t * PER + i) as u64, &sc);
                        assert!(q.submit(j).is_ok(), "ShedOldest never refuses");
                        rxs.push(rx);
                    }
                    rxs
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        let s = q.stats();
        assert_eq!(s.admitted, TOTAL);
        assert_eq!(s.rejected, 0);
        assert!(s.max_depth <= 4, "depth bound violated: {}", s.max_depth);
        // Conservation: every admitted job is still queued or was shed.
        assert_eq!(q.depth_now() as u64 + s.shed, TOTAL);
        assert!(s.shed > 0, "a 100-burst into depth 4 must shed");
        // Survivors drain; shed handles already resolved.
        q.close();
        let mut drained = 0u64;
        while let Some(b) = q.next_batch(8) {
            drained += b.len() as u64;
        }
        assert_eq!(drained + s.shed, TOTAL);
        let shed_resolved = rx_bins
            .iter()
            .flatten()
            .filter(|rx| matches!(rx.try_recv(), Ok(SolveOutcome::Shed)))
            .count() as u64;
        assert_eq!(shed_resolved, s.shed, "every shed job resolves its handle");
    }

    #[test]
    fn close_refuses_arrivals_and_drains() {
        let q = JobQueue::new(4, AdmissionPolicy::Reject);
        let sc = tiny_scenario();
        q.submit(job(0, &sc).0).unwrap();
        q.close();
        assert!(q.submit(job(1, &sc).0).is_err());
        assert_eq!(q.next_batch(4).unwrap().len(), 1);
        assert!(q.next_batch(4).is_none(), "drained + closed ends workers");
    }
}
