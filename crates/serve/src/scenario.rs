//! Scenario classes, solve requests, and responses.
//!
//! A **scenario class** is everything that determines the immutable
//! per-family solver state: the mesh generator spec, the flow model, the
//! data-layout enhancements, and the spatial order.  Two requests in the
//! same class share a mesh, its orderings, a partition, and the symbolic
//! ILU / BCSR structure; only the ΨNKS tunables (CFL law, tolerances,
//! Krylov options) vary per request.

use fun3d_core::config::{CaseConfig, LayoutConfig};
use fun3d_euler::model::FlowModel;
use fun3d_euler::residual::SpatialOrder;
use fun3d_mesh::generator::BumpChannelSpec;
use fun3d_solver::pseudo::{PseudoTransientOptions, SolveHistory};

/// The immutable-state equivalence class of a solve request.
#[derive(Debug, Clone)]
pub struct ScenarioClass {
    /// Mesh generator parameters (the mesh family).
    pub mesh: BumpChannelSpec,
    /// Flow model; with the mesh this fixes the Jacobian pattern.
    pub model: FlowModel,
    /// Data-layout enhancements (orderings, interlacing, blocking).
    pub layout: LayoutConfig,
    /// Spatial order of the residual at start.
    pub order: SpatialOrder,
}

impl ScenarioClass {
    /// The small tuned default (mirrors `CaseConfig::small`).
    pub fn small() -> Self {
        let c = CaseConfig::small();
        Self {
            mesh: c.mesh,
            model: c.model,
            layout: c.layout,
            order: c.order,
        }
    }

    /// The bit-exact cache key for this class.
    pub fn key(&self) -> FamilyKey {
        let m = &self.mesh;
        FamilyKey {
            mesh_dims: [m.nx as u64, m.ny as u64, m.nz as u64],
            mesh_geom: [
                m.length.to_bits(),
                m.span.to_bits(),
                m.height.to_bits(),
                m.bump_height.to_bits(),
                m.bump_center.to_bits(),
                m.bump_width.to_bits(),
                m.grading.to_bits(),
                m.jitter.to_bits(),
            ],
            mesh_seed: m.seed,
            model: match self.model {
                FlowModel::Incompressible { beta } => ModelKey::Incompressible {
                    beta_bits: beta.to_bits(),
                },
                FlowModel::Compressible { gamma } => ModelKey::Compressible {
                    gamma_bits: gamma.to_bits(),
                },
            },
            layout: self.layout,
            order: self.order,
        }
    }

    /// Unknowns per vertex (the structural block size).
    pub fn block_size(&self) -> usize {
        self.model.ncomp()
    }

    /// The BCSR block the solve path uses: structural blocking applies only
    /// in the interlaced layout (same rule as the sequential driver).
    pub fn bcsr_block(&self) -> Option<usize> {
        (self.layout.blocked && self.layout.interlaced).then(|| self.block_size())
    }

    /// Expand into a full `CaseConfig` with the given solver options (the
    /// direct, uncached path runs through this).
    pub fn to_case(&self, nks: PseudoTransientOptions) -> CaseConfig {
        CaseConfig {
            mesh: self.mesh,
            model: self.model,
            layout: self.layout,
            order: self.order,
            nks,
        }
    }
}

/// Bit-exact fingerprint of a [`ScenarioClass`] — the cache key.  Floating
/// fields enter as IEEE bit patterns, so two classes collide only when every
/// parameter is identical (no epsilon aliasing, no hash truncation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FamilyKey {
    mesh_dims: [u64; 3],
    mesh_geom: [u64; 8],
    mesh_seed: u64,
    model: ModelKey,
    layout: LayoutConfig,
    order: SpatialOrder,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ModelKey {
    Incompressible { beta_bits: u64 },
    Compressible { gamma_bits: u64 },
}

/// One queued solve request.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// Engine-assigned id (submission order).
    pub id: u64,
    /// The scenario class (selects the shared family state).
    pub scenario: ScenarioClass,
    /// Per-request ΨNKS tunables.  `bcsr_block` is overridden from the
    /// scenario's layout, like the sequential driver does.
    pub nks: PseudoTransientOptions,
}

/// Terminal outcome of a submitted request.
#[derive(Debug, Clone)]
pub enum SolveOutcome {
    /// The solve ran to completion.
    Done(Box<SolveResponse>),
    /// The solver's health monitor tripped and the solve aborted: the
    /// response's `history.anomaly` carries the typed verdict.  Failed
    /// requests burn SLO error budget like over-target completions.
    Failed(Box<SolveResponse>),
    /// Admitted, then dropped by the `ShedOldest` admission policy to make
    /// room for a later arrival.
    Shed,
}

impl SolveOutcome {
    /// The response if the solve completed *healthily*.
    pub fn done(self) -> Option<SolveResponse> {
        match self {
            SolveOutcome::Done(r) => Some(*r),
            SolveOutcome::Failed(_) | SolveOutcome::Shed => None,
        }
    }

    /// The response whether the solve succeeded or aborted on an anomaly
    /// (`None` only for shed jobs).
    pub fn response(self) -> Option<SolveResponse> {
        match self {
            SolveOutcome::Done(r) | SolveOutcome::Failed(r) => Some(*r),
            SolveOutcome::Shed => None,
        }
    }

    /// Whether the solve aborted on a detected anomaly.
    pub fn is_failed(&self) -> bool {
        matches!(self, SolveOutcome::Failed(_))
    }
}

/// A completed solve with its result and serving-side timing attribution.
#[derive(Debug, Clone)]
pub struct SolveResponse {
    /// Request id.
    pub id: u64,
    /// Full ΨNKS history (per-step residuals, iterations, phase timers).
    pub history: SolveHistory,
    /// The converged state vector.
    pub solution: Vec<f64>,
    /// FNV-1a fingerprint of the solution's IEEE bit patterns — lets
    /// callers check result identity without shipping vectors around.
    pub solution_fingerprint: u64,
    /// Whether the family state came from the cache (false exactly once per
    /// family per capacity residency).
    pub cache_hit: bool,
    /// Number of requests served by this worker pass (1 = unbatched).
    pub batch_size: usize,
    /// Seconds spent queued before a worker picked the request up.
    pub t_queue_s: f64,
    /// Seconds from batch pickup to this solve's start: shared state
    /// acquisition plus any earlier same-batch solves (batch assembly).
    pub t_batch_s: f64,
    /// Seconds acquiring the family state, attributed to the request that
    /// paid for it (0 for the rest of its batch).
    pub t_setup_s: f64,
    /// Seconds in the ΨNKS solve itself.
    pub t_solve_s: f64,
    /// Seconds fingerprinting and assembling the response.
    pub t_respond_s: f64,
    /// End-to-end seconds from admission to completion.  The segments
    /// partition it: `t_queue_s + t_batch_s + t_solve_s + t_respond_s`
    /// equals this up to float rounding.
    pub latency_s: f64,
}

/// FNV-1a over the IEEE-754 bit patterns of a state vector.
pub fn solution_fingerprint(q: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in q {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_separate_families_and_unify_repeats() {
        let a = ScenarioClass::small();
        let mut b = ScenarioClass::small();
        assert_eq!(a.key(), b.key());
        b.mesh.nx += 1;
        assert_ne!(a.key(), b.key());
        let mut c = ScenarioClass::small();
        c.model = FlowModel::compressible();
        assert_ne!(a.key(), c.key());
        let mut d = ScenarioClass::small();
        d.layout = LayoutConfig::baseline();
        assert_ne!(a.key(), d.key());
        // f64 params enter bit-exactly.
        let mut e = ScenarioClass::small();
        e.mesh.jitter += 1e-16;
        if e.mesh.jitter != a.mesh.jitter {
            assert_ne!(a.key(), e.key());
        }
    }

    #[test]
    fn bcsr_block_follows_layout() {
        let tuned = ScenarioClass::small();
        assert_eq!(tuned.bcsr_block(), Some(4));
        let mut seg = ScenarioClass::small();
        seg.layout = LayoutConfig::baseline();
        assert_eq!(seg.bcsr_block(), None);
    }

    #[test]
    fn fingerprint_is_bit_sensitive() {
        let q = vec![1.0, 2.0, 3.0];
        let mut q2 = q.clone();
        assert_eq!(solution_fingerprint(&q), solution_fingerprint(&q2));
        q2[1] = f64::from_bits(2.0f64.to_bits() + 1); // next float up
        assert_ne!(solution_fingerprint(&q), solution_fingerprint(&q2));
        // 0.0 and -0.0 compare equal but are different bit patterns.
        assert_ne!(solution_fingerprint(&[0.0]), solution_fingerprint(&[-0.0]));
    }
}
