//! Immutable per-family solver state, shared across concurrent solves.
//!
//! Everything a solve needs that depends only on the [`ScenarioClass`] —
//! the generated mesh with its orderings applied, a k-way partition of the
//! vertex graph, and the symbolic ILU(k) / BCSR structure templates — is
//! built once per family and shared behind an `Arc`.  A warm solve then
//! pays only the marginal cost: discretization assembly, numeric
//! refactorization, and the Krylov iterations.  Results are bitwise
//! identical to the uncached path (the templates are pattern-only; see
//! [`fun3d_solver::pseudo::WarmStart`]).

use crate::scenario::{FamilyKey, ScenarioClass};
use fun3d_core::config::apply_orderings;
use fun3d_core::problem::EulerProblem;
use fun3d_euler::residual::Discretization;
use fun3d_mesh::tet::TetMesh;
use fun3d_partition::partition_kway;
use fun3d_solver::op::PseudoTransientProblem;
use fun3d_solver::pseudo::{
    solve_pseudo_transient_warm, PrecondSpec, PseudoTransientOptions, SolveHistory, WarmStart,
};
use fun3d_sparse::bcsr::BcsrMatrix;
use fun3d_sparse::csr::CsrMatrix;
use fun3d_sparse::ilu::{IluFactors, IluOptions, PrecStorage};
use fun3d_telemetry::events::EventSink;
use fun3d_telemetry::Registry;
use std::sync::{Arc, Mutex};

/// Seed for the family partition (deterministic across builds).
const PARTITION_SEED: u64 = 0x5e7e_5e7e;

/// Structure templates built lazily per (options) and shared thereafter.
#[derive(Default)]
struct Templates {
    /// ILU(k) symbolic templates keyed by (fill level, storage).
    ilu: Vec<((usize, PrecStorage), Arc<IluFactors>)>,
    /// BCSR block-structure templates keyed by block size.
    bcsr: Vec<(usize, Arc<BcsrMatrix>)>,
}

/// The shared immutable state of one scenario family.
pub struct FamilyState {
    key: FamilyKey,
    scenario: ScenarioClass,
    mesh: TetMesh,
    /// Disjoint owned-vertex sets from a k-way partition of the vertex
    /// graph — reusable by Schwarz-preconditioned requests.
    subdomains: Vec<Vec<usize>>,
    templates: Mutex<Templates>,
    build_time_s: f64,
}

impl std::fmt::Debug for FamilyState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FamilyState")
            .field("nverts", &self.mesh.nverts())
            .field("subdomains", &self.subdomains.len())
            .field("build_time_s", &self.build_time_s)
            .finish()
    }
}

impl FamilyState {
    /// Build the family state: generate and order the mesh, partition its
    /// vertex graph into `nsubdomains` parts.  This is the expensive,
    /// once-per-family step the cache amortizes.
    pub fn build(scenario: &ScenarioClass, nsubdomains: usize) -> Self {
        let t0 = std::time::Instant::now();
        let mesh = apply_orderings(
            scenario.mesh.build(),
            scenario.layout.vertex_ordering,
            scenario.layout.edge_ordering,
        );
        let g = mesh.vertex_graph();
        let k = nsubdomains.clamp(1, mesh.nverts());
        let subdomains = partition_kway(&g, k, PARTITION_SEED).subdomains();
        Self {
            key: scenario.key(),
            scenario: scenario.clone(),
            mesh,
            subdomains,
            templates: Mutex::new(Templates::default()),
            build_time_s: t0.elapsed().as_secs_f64(),
        }
    }

    /// The family's cache key.
    pub fn key(&self) -> FamilyKey {
        self.key
    }

    /// The scenario class this state was built for.
    pub fn scenario(&self) -> &ScenarioClass {
        &self.scenario
    }

    /// The ordered mesh.
    pub fn mesh(&self) -> &TetMesh {
        &self.mesh
    }

    /// Owned-vertex sets of the family partition.
    pub fn subdomains(&self) -> &[Vec<usize>] {
        &self.subdomains
    }

    /// Mesh vertices.
    pub fn nverts(&self) -> usize {
        self.mesh.nverts()
    }

    /// Unknowns per solve.
    pub fn nunknowns(&self) -> usize {
        self.mesh.nverts() * self.scenario.model.ncomp()
    }

    /// Seconds the one-time build took (mesh + orderings + partition).
    pub fn build_time_s(&self) -> f64 {
        self.build_time_s
    }

    /// A representative shifted first-order Jacobian: the pattern every
    /// step matrix of this family shares.  The diagonal shift mirrors the
    /// solver's pseudo-timestep term so the numeric factorization the
    /// template build runs cannot hit spurious zero pivots.
    fn representative_jacobian(&self, cfl: f64) -> CsrMatrix {
        let disc = Discretization::new(
            &self.mesh,
            self.scenario.model,
            self.scenario.layout.field_layout(),
            self.scenario.order,
        );
        let problem = EulerProblem::new(disc);
        let q = problem.initial_state();
        let mut jac = problem.jacobian(&q);
        let d = problem.inverse_timestep_scale(&q);
        jac.shift_diagonal_by(1.0 / cfl.max(1e-6), &d);
        jac
    }

    /// The ILU(k) symbolic template for `opts`, built on first use.  Holding
    /// the lock across the build serializes first-touch per family but
    /// guarantees every caller gets the same `Arc` with no duplicate work.
    fn ilu_template(&self, opts: &IluOptions, cfl: f64) -> Option<Arc<IluFactors>> {
        let k = (opts.fill_level, opts.storage);
        let mut g = self.templates.lock().unwrap();
        if let Some((_, t)) = g.ilu.iter().find(|(key, _)| *key == k) {
            return Some(t.clone());
        }
        let jac = self.representative_jacobian(cfl);
        let t = Arc::new(IluFactors::factor(&jac, opts).ok()?);
        g.ilu.push((k, t.clone()));
        Some(t)
    }

    /// The BCSR block-structure template for block size `b`.
    fn bcsr_template(&self, b: usize, cfl: f64) -> Option<Arc<BcsrMatrix>> {
        let mut g = self.templates.lock().unwrap();
        if let Some((_, t)) = g.bcsr.iter().find(|(key, _)| *key == b) {
            return Some(t.clone());
        }
        if !self.nunknowns().is_multiple_of(b) {
            return None;
        }
        let jac = self.representative_jacobian(cfl);
        let t = Arc::new(BcsrMatrix::from_csr(&jac, b));
        g.bcsr.push((b, t.clone()));
        Some(t)
    }

    /// Assemble the [`WarmStart`] for a request's solver options: the ILU
    /// template when the request uses a global ILU preconditioner, and the
    /// BCSR template when the layout calls for structural blocking.
    pub fn warm_start(&self, nks: &PseudoTransientOptions) -> WarmStart {
        let mut warm = WarmStart::none();
        if let PrecondSpec::Ilu(ilu) = &nks.precond {
            warm.ilu = self.ilu_template(ilu, nks.cfl0);
        }
        if !nks.matrix_free {
            if let Some(b) = nks.bcsr_block {
                warm.bcsr = self.bcsr_template(b, nks.cfl0);
            }
        }
        warm
    }

    /// Number of structure templates currently held (for tests/metrics).
    pub fn template_count(&self) -> usize {
        let g = self.templates.lock().unwrap();
        g.ilu.len() + g.bcsr.len()
    }

    /// Run one solve against this family's shared state.  Identical in
    /// result to [`direct_solve`] on the same scenario and options, but the
    /// mesh build, orderings, partition, and symbolic setup are all reused.
    pub fn solve(
        &self,
        nks: &PseudoTransientOptions,
        tel: &Registry,
        events: &EventSink,
    ) -> (SolveHistory, Vec<f64>) {
        let mut nks = nks.clone();
        nks.bcsr_block = self.scenario.bcsr_block();
        let warm = self.warm_start(&nks);
        let disc = Discretization::new(
            &self.mesh,
            self.scenario.model,
            self.scenario.layout.field_layout(),
            self.scenario.order,
        );
        let mut problem = EulerProblem::new(disc);
        let mut q = problem.initial_state();
        let history = solve_pseudo_transient_warm(&mut problem, &mut q, &nks, tel, events, &warm);
        (history, q)
    }
}

/// The uncached reference path: build everything from scratch, exactly as
/// the sequential driver does, and solve cold.  The serve gates pin cached
/// results bitwise against this.
pub fn direct_solve(
    scenario: &ScenarioClass,
    nks: &PseudoTransientOptions,
) -> (SolveHistory, Vec<f64>) {
    let mut nks = nks.clone();
    nks.bcsr_block = scenario.bcsr_block();
    let mesh = apply_orderings(
        scenario.mesh.build(),
        scenario.layout.vertex_ordering,
        scenario.layout.edge_ordering,
    );
    let disc = Discretization::new(
        &mesh,
        scenario.model,
        scenario.layout.field_layout(),
        scenario.order,
    );
    let mut problem = EulerProblem::new(disc);
    let mut q = problem.initial_state();
    let history = solve_pseudo_transient_warm(
        &mut problem,
        &mut q,
        &nks,
        &Registry::disabled(),
        &EventSink::disabled(),
        &WarmStart::none(),
    );
    (history, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{tiny_nks, tiny_scenario};

    #[test]
    fn cached_solve_is_bitwise_identical_to_direct() {
        let sc = tiny_scenario();
        let nks = tiny_nks();
        let state = FamilyState::build(&sc, 2);
        let (hd, qd) = direct_solve(&sc, &nks);
        let (hc, qc) = state.solve(&nks, &Registry::disabled(), &EventSink::disabled());
        assert_eq!(qd, qc, "cached path must match direct path bitwise");
        assert_eq!(hd.nsteps(), hc.nsteps());
        assert_eq!(hd.final_residual, hc.final_residual);
        for (a, b) in hd.steps.iter().zip(&hc.steps) {
            assert_eq!(a.residual_norm, b.residual_norm);
            assert_eq!(a.linear_iters, b.linear_iters);
        }
        // Repeat solves reuse the same templates and stay identical.
        assert!(state.template_count() >= 1);
        let before = state.template_count();
        let (_, qc2) = state.solve(&nks, &Registry::disabled(), &EventSink::disabled());
        assert_eq!(qd, qc2);
        assert_eq!(state.template_count(), before, "no template rebuild");
    }

    #[test]
    fn family_partition_covers_all_vertices() {
        let sc = tiny_scenario();
        let state = FamilyState::build(&sc, 3);
        assert_eq!(state.subdomains().len(), 3);
        let mut seen = vec![false; state.nverts()];
        for s in state.subdomains() {
            for &v in s {
                assert!(!seen[v], "vertex {v} owned twice");
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(state.nunknowns(), state.nverts() * 4);
        assert!(state.build_time_s() > 0.0);
    }
}
