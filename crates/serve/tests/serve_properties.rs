//! End-to-end properties of the serving layer.
//!
//! The load-bearing contract: a solve served from cached, `Arc`-shared
//! family state is **bitwise identical** to the direct (build-everything)
//! path — over randomized mesh families, physics, layouts, and solver
//! tunables, through both `FamilyState::solve` and the full engine.

use fun3d_core::config::LayoutConfig;
use fun3d_euler::model::FlowModel;
use fun3d_serve::presets::{tiny_nks, tiny_scenario};
use fun3d_serve::{
    direct_solve, solution_fingerprint, AdmissionPolicy, Engine, EngineConfig, FamilyState,
    ScenarioClass, StateCache,
};
use fun3d_telemetry::events::EventSink;
use fun3d_telemetry::Registry;
use proptest::prelude::*;

fn scenario(nx: usize, ny: usize, nz: usize, compressible: bool, tuned: bool) -> ScenarioClass {
    let mut sc = tiny_scenario();
    sc.mesh.nx = nx;
    sc.mesh.ny = ny;
    sc.mesh.nz = nz;
    if compressible {
        sc.model = FlowModel::compressible();
    }
    if !tuned {
        sc.layout = LayoutConfig::baseline();
    }
    sc
}

proptest! {
    // Each case runs two full ΨNKS solves; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cached_and_direct_solves_agree_bitwise(
        nx in 4usize..7,
        ny in 4usize..6,
        nz in 4usize..6,
        compressible in 0usize..2,
        tuned in 0usize..2,
        cfl0 in 2.0f64..8.0,
        fill in 0usize..2,
    ) {
        let sc = scenario(nx, ny, nz, compressible == 1, tuned == 1);
        let mut nks = tiny_nks();
        nks.cfl0 = cfl0;
        nks.precond = fun3d_solver::pseudo::PrecondSpec::Ilu(
            fun3d_sparse::ilu::IluOptions::with_fill(fill),
        );
        let (hd, qd) = direct_solve(&sc, &nks);
        let state = FamilyState::build(&sc, 2);
        // Two cached solves: the second reuses the templates the first built.
        for _ in 0..2 {
            let (hc, qc) = state.solve(&nks, &Registry::disabled(), &EventSink::disabled());
            prop_assert_eq!(&qc, &qd);
            prop_assert_eq!(hc.nsteps(), hd.nsteps());
            prop_assert_eq!(hc.final_residual, hd.final_residual);
            prop_assert_eq!(
                solution_fingerprint(&qc),
                solution_fingerprint(&qd)
            );
        }
    }
}

#[test]
fn engine_results_match_direct_path_across_mixed_families() {
    // Two interleaved families through a live engine with batching: every
    // response must match its family's direct-path solve bitwise.
    let fam_a = scenario(6, 5, 4, false, true);
    let fam_b = scenario(5, 4, 4, true, false);
    let nks = tiny_nks();
    let (_, qa) = direct_solve(&fam_a, &nks);
    let (_, qb) = direct_solve(&fam_b, &nks);
    let eng = Engine::start(&EngineConfig {
        workers: 2,
        queue_depth: 64,
        max_batch: 4,
        cache_capacity: 2,
        ..Default::default()
    });
    let handles: Vec<_> = (0..10)
        .map(|i| {
            let sc = if i % 2 == 0 { &fam_a } else { &fam_b };
            (i, eng.submit(sc, &nks).unwrap())
        })
        .collect();
    for (i, h) in handles {
        let resp = h.wait().done().expect("reject policy never sheds");
        let expect = if i % 2 == 0 { &qa } else { &qb };
        assert_eq!(&resp.solution, expect, "request {i} diverged from direct");
    }
    let stats = eng.shutdown();
    assert_eq!(stats.completed, 10);
    assert_eq!(stats.cache.misses, 2, "one build per family");
}

#[test]
fn eviction_then_rebuild_preserves_results() {
    // Capacity 1 with two alternating families: every lookup after the
    // first evicts; rebuilt state must still match the direct path.
    let fam_a = scenario(5, 4, 4, false, true);
    let fam_b = scenario(4, 4, 4, false, true);
    let nks = tiny_nks();
    let (_, qa) = direct_solve(&fam_a, &nks);
    let (_, qb) = direct_solve(&fam_b, &nks);
    let cache = StateCache::new(1, 1);
    for round in 0..2 {
        for (sc, expect) in [(&fam_a, &qa), (&fam_b, &qb)] {
            let (state, _) = cache.get_or_build(sc);
            let (_, q) = state.solve(&nks, &Registry::disabled(), &EventSink::disabled());
            assert_eq!(&q, expect, "round {round}");
        }
    }
    let s = cache.stats();
    assert_eq!(s.misses, 4, "capacity 1 forces rebuild each swap");
    assert!(s.evictions >= 3);
}

#[test]
fn shed_load_still_returns_correct_results_for_survivors() {
    let sc = scenario(5, 4, 4, false, true);
    let nks = tiny_nks();
    let (_, qd) = direct_solve(&sc, &nks);
    let eng = Engine::start(&EngineConfig {
        workers: 1,
        queue_depth: 2,
        policy: AdmissionPolicy::ShedOldest,
        max_batch: 2,
        ..Default::default()
    });
    let handles: Vec<_> = (0..8).map(|_| eng.submit(&sc, &nks).unwrap()).collect();
    let mut done = 0;
    for h in handles {
        if let Some(resp) = h.wait().done() {
            assert_eq!(resp.solution, qd);
            done += 1;
        }
    }
    let stats = eng.shutdown();
    assert!(done > 0, "at least the in-flight job completes");
    assert_eq!(stats.completed, done as u64);
    assert_eq!(stats.queue.shed + stats.completed, 8);
}
