//! Restarted GMRES with modified Gram–Schmidt, right-preconditioned.
//!
//! Right preconditioning solves `A M^{-1} (M x) = b`, so the Arnoldi
//! residual norms are *true* residual norms and convergence tolerances mean
//! what Table 4 reports.  The restart dimension (`GMRES(20)` in the paper's
//! Table 4 runs; "values in the range of 10–30" per Section 2.4.2) bounds
//! the Krylov memory, trading convergence speed for storage — one of the
//! tunables the paper sweeps.

use crate::op::LinearOperator;
use crate::precond::Preconditioner;
use fun3d_sparse::par::ParCtx;
use fun3d_sparse::vec_ops::{axpy_par, dot_par, norm2_par};
use fun3d_telemetry::events::{EventRecord, EventSink};
use fun3d_telemetry::Registry;

/// Options for a GMRES solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmresOptions {
    /// Restart dimension `m` (simultaneously storable Krylov vectors).
    pub restart: usize,
    /// Relative tolerance on `||b - A x|| / ||b||`.
    pub rtol: f64,
    /// Absolute tolerance on `||b - A x||`.
    pub atol: f64,
    /// Overall iteration (matvec) limit.
    pub max_iters: usize,
    /// Thread context for the BLAS-1 kernels inside the Arnoldi loop
    /// (dots, norms, axpys).  Sequential by default; reductions are ordered
    /// sums of per-thread partials, so results are deterministic for a
    /// fixed team size.
    pub par: ParCtx,
}

impl Default for GmresOptions {
    fn default() -> Self {
        Self {
            restart: 20,
            rtol: 1e-2,
            atol: 1e-50,
            max_iters: 200,
            par: ParCtx::seq(),
        }
    }
}

/// Outcome of a GMRES solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmresResult {
    /// Total Krylov iterations (matvec + preconditioner applications).
    pub iterations: usize,
    /// Final true residual norm.
    pub residual_norm: f64,
    /// Whether a tolerance was met (vs. hitting the iteration limit).
    pub converged: bool,
}

/// Solve `A x = b` with restarted, right-preconditioned GMRES.  `x` carries
/// the initial guess in and the solution out.
pub fn gmres<A: LinearOperator + ?Sized, M: Preconditioner + ?Sized>(
    a: &A,
    m: &M,
    b: &[f64],
    x: &mut [f64],
    opts: &GmresOptions,
) -> GmresResult {
    gmres_with_telemetry(a, m, b, x, opts, &Registry::disabled())
}

/// [`gmres`] with profiling: records `gmres` / `gmres/precond` /
/// `gmres/apply` / `gmres/orth` spans in `tel` (relative to whatever span is
/// currently open).  With a disabled registry each span is one branch, so
/// [`gmres`] simply delegates here.
pub fn gmres_with_telemetry<A: LinearOperator + ?Sized, M: Preconditioner + ?Sized>(
    a: &A,
    m: &M,
    b: &[f64],
    x: &mut [f64],
    opts: &GmresOptions,
    tel: &Registry,
) -> GmresResult {
    gmres_with_events(a, m, b, x, opts, tel, &EventSink::disabled(), 0)
}

/// [`gmres_with_telemetry`] that additionally emits one
/// [`EventRecord::KrylovIter`] per inner iteration into `events`, tagged
/// with the enclosing pseudo-timestep `newton_step`.  The residual norm in
/// each record is the Arnoldi estimate, which with right preconditioning is
/// the *true* residual norm.
#[allow(clippy::too_many_arguments)]
pub fn gmres_with_events<A: LinearOperator + ?Sized, M: Preconditioner + ?Sized>(
    a: &A,
    m: &M,
    b: &[f64],
    x: &mut [f64],
    opts: &GmresOptions,
    tel: &Registry,
    events: &EventSink,
    newton_step: u64,
) -> GmresResult {
    let _gmres_span = tel.span("gmres");
    // Analytic per-apply traffic, when the operator/preconditioner know it:
    // attached as a `bytes` counter on each apply/precond span so profiled
    // runs derive achieved GB/s per phase (PerfReport::bandwidth_metrics).
    let apply_bytes = a.traffic_bytes();
    let precond_bytes = m.traffic_bytes();
    let n = a.n();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    assert!(opts.restart >= 1);
    let restart = opts.restart;
    let par = &opts.par;
    let norm_b = norm2_par(b, par);
    let target = (opts.rtol * norm_b).max(opts.atol);

    let mut total_iters = 0usize;
    let mut r = vec![0.0; n];
    let mut w = vec![0.0; n];
    let mut z = vec![0.0; n];
    // Krylov basis.
    let mut v: Vec<Vec<f64>> = Vec::new();
    // Hessenberg in column-major compact form: h[j] has j+2 entries.
    let mut h: Vec<Vec<f64>> = Vec::new();
    // Givens rotations and RHS of the least-squares problem.
    let mut cs = vec![0.0f64; restart + 1];
    let mut sn = vec![0.0f64; restart + 1];
    let mut g = vec![0.0f64; restart + 1];

    loop {
        // r = b - A x.
        {
            let _g = tel.span("apply");
            if let Some(bytes) = apply_bytes {
                tel.counter("bytes", bytes);
            }
            a.apply(x, &mut r);
        }
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let beta = norm2_par(&r, par);
        if beta <= target || total_iters >= opts.max_iters {
            return GmresResult {
                iterations: total_iters,
                residual_norm: beta,
                converged: beta <= target,
            };
        }
        v.clear();
        h.clear();
        let mut v0 = r.clone();
        for vi in v0.iter_mut() {
            *vi /= beta;
        }
        v.push(v0);
        g.iter_mut().for_each(|x| *x = 0.0);
        g[0] = beta;

        let mut j = 0usize;
        while j < restart && total_iters < opts.max_iters {
            // w = A M^{-1} v_j.
            {
                let _g = tel.span("precond");
                if let Some(bytes) = precond_bytes {
                    tel.counter("bytes", bytes);
                }
                m.apply(&v[j], &mut z);
            }
            {
                let _g = tel.span("apply");
                if let Some(bytes) = apply_bytes {
                    tel.counter("bytes", bytes);
                }
                a.apply(&z, &mut w);
            }
            total_iters += 1;
            // Modified Gram-Schmidt.
            let _orth = tel.span("orth");
            let mut hj = vec![0.0f64; j + 2];
            for (i, vi) in v.iter().enumerate().take(j + 1) {
                let hij = dot_par(&w, vi, par);
                hj[i] = hij;
                axpy_par(-hij, vi, &mut w, par);
            }
            let wnorm = norm2_par(&w, par);
            hj[j + 1] = wnorm;
            // Apply existing Givens rotations to the new column.
            for i in 0..j {
                let t = cs[i] * hj[i] + sn[i] * hj[i + 1];
                hj[i + 1] = -sn[i] * hj[i] + cs[i] * hj[i + 1];
                hj[i] = t;
            }
            // New rotation to zero hj[j+1].
            let denom = (hj[j] * hj[j] + hj[j + 1] * hj[j + 1]).sqrt();
            if denom > 0.0 {
                cs[j] = hj[j] / denom;
                sn[j] = hj[j + 1] / denom;
            } else {
                cs[j] = 1.0;
                sn[j] = 0.0;
            }
            hj[j] = cs[j] * hj[j] + sn[j] * hj[j + 1];
            hj[j + 1] = 0.0;
            g[j + 1] = -sn[j] * g[j];
            g[j] *= cs[j];
            let res_est = g[j + 1].abs();
            events.emit(EventRecord::KrylovIter {
                step: newton_step,
                iter: total_iters as u64,
                residual_norm: res_est,
            });
            h.push(hj);
            j += 1;
            if wnorm == 0.0 {
                // Lucky breakdown: exact solution in the current space.
                break;
            }
            if j < restart {
                let mut vj = w.clone();
                for vi in vj.iter_mut() {
                    *vi /= wnorm;
                }
                v.push(vj);
            }
            if res_est <= target {
                break;
            }
        }
        // Back-substitute y from the triangular system H y = g.
        let k = j;
        let mut y = vec![0.0f64; k];
        for i in (0..k).rev() {
            let mut s = g[i];
            for l in (i + 1)..k {
                s -= h[l][i] * y[l];
            }
            y[i] = s / h[i][i];
        }
        // x += M^{-1} (V y).
        let mut update = vec![0.0; n];
        for (l, yl) in y.iter().enumerate() {
            axpy_par(*yl, &v[l], &mut update, par);
        }
        {
            let _g = tel.span("precond");
            if let Some(bytes) = precond_bytes {
                tel.counter("bytes", bytes);
            }
            m.apply(&update, &mut z);
        }
        axpy_par(1.0, &z, x, par);
        // Loop back: recompute the true residual and re-test.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::CsrOperator;
    use crate::precond::{IdentityPrecond, IluPrecond};
    use fun3d_sparse::csr::CsrMatrix;
    use fun3d_sparse::ilu::{IluFactors, IluOptions};
    use fun3d_sparse::triplet::TripletMatrix;
    use fun3d_sparse::vec_ops::norm2;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn laplacian_2d(nx: usize) -> CsrMatrix {
        let n = nx * nx;
        let mut t = TripletMatrix::new(n, n);
        let id = |i: usize, j: usize| i * nx + j;
        for i in 0..nx {
            for j in 0..nx {
                t.push(id(i, j), id(i, j), 4.0);
                if i > 0 {
                    t.push(id(i, j), id(i - 1, j), -1.0);
                }
                if i + 1 < nx {
                    t.push(id(i, j), id(i + 1, j), -1.0);
                }
                if j > 0 {
                    t.push(id(i, j), id(i, j - 1), -1.0);
                }
                if j + 1 < nx {
                    t.push(id(i, j), id(i, j + 1), -1.0);
                }
            }
        }
        t.to_csr()
    }

    fn residual_norm(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        a.spmv(x, &mut r);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri -= bi;
        }
        norm2(&r)
    }

    #[test]
    fn solves_identity_in_one_iteration() {
        let a = CsrMatrix::identity(10);
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut x = vec![0.0; 10];
        let r = gmres(
            &CsrOperator::new(&a),
            &IdentityPrecond,
            &b,
            &mut x,
            &GmresOptions {
                rtol: 1e-12,
                ..Default::default()
            },
        );
        assert!(r.converged);
        assert!(r.iterations <= 2);
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn converges_on_laplacian_unpreconditioned() {
        let a = laplacian_2d(12);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut x = vec![0.0; n];
        let r = gmres(
            &CsrOperator::new(&a),
            &IdentityPrecond,
            &b,
            &mut x,
            &GmresOptions {
                restart: 30,
                rtol: 1e-8,
                max_iters: 2000,
                ..Default::default()
            },
        );
        assert!(r.converged, "{r:?}");
        assert!(residual_norm(&a, &x, &b) <= 1e-8 * norm2(&b) * 1.01);
    }

    #[test]
    fn ilu_preconditioning_cuts_iterations() {
        let a = laplacian_2d(16);
        let n = a.nrows();
        let b = vec![1.0; n];
        let opts = GmresOptions {
            restart: 30,
            rtol: 1e-8,
            max_iters: 3000,
            ..Default::default()
        };
        let mut x1 = vec![0.0; n];
        let r1 = gmres(&CsrOperator::new(&a), &IdentityPrecond, &b, &mut x1, &opts);
        let f = IluFactors::factor(&a, &IluOptions::with_fill(1)).unwrap();
        let pc = IluPrecond::new(f);
        let mut x2 = vec![0.0; n];
        let r2 = gmres(&CsrOperator::new(&a), &pc, &b, &mut x2, &opts);
        assert!(r1.converged && r2.converged);
        assert!(
            r2.iterations * 2 < r1.iterations,
            "ILU should at least halve iterations: {} vs {}",
            r2.iterations,
            r1.iterations
        );
        assert!(residual_norm(&a, &x2, &b) <= 1e-7 * norm2(&b));
    }

    #[test]
    fn restart_survives_and_converges() {
        // Small restart on a problem needing many iterations.
        let a = laplacian_2d(14);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut x = vec![0.0; n];
        let r = gmres(
            &CsrOperator::new(&a),
            &IdentityPrecond,
            &b,
            &mut x,
            &GmresOptions {
                restart: 5,
                rtol: 1e-6,
                max_iters: 5000,
                ..Default::default()
            },
        );
        assert!(r.converged, "{r:?}");
    }

    #[test]
    fn nonsymmetric_system_converges() {
        let n = 80;
        let mut rng = SmallRng::seed_from_u64(3);
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 5.0);
            for _ in 0..3 {
                let j = rng.gen_range(0..n);
                if j != i {
                    t.push(i, j, rng.gen_range(-1.0..1.0));
                }
            }
        }
        let a = t.to_csr();
        let xtrue: Vec<f64> = (0..n).map(|i| (i % 4) as f64 - 1.5).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xtrue, &mut b);
        let mut x = vec![0.0; n];
        let r = gmres(
            &CsrOperator::new(&a),
            &IdentityPrecond,
            &b,
            &mut x,
            &GmresOptions {
                restart: 40,
                rtol: 1e-10,
                max_iters: 1000,
                ..Default::default()
            },
        );
        assert!(r.converged);
        for (u, v) in x.iter().zip(&xtrue) {
            assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    #[test]
    fn nonzero_initial_guess_is_used() {
        let a = laplacian_2d(8);
        let n = a.nrows();
        let xtrue: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xtrue, &mut b);
        // Start at the exact solution: zero iterations needed.
        let mut x = xtrue.clone();
        let r = gmres(
            &CsrOperator::new(&a),
            &IdentityPrecond,
            &b,
            &mut x,
            &GmresOptions::default(),
        );
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn iteration_limit_reported_as_not_converged() {
        let a = laplacian_2d(16);
        let n = a.nrows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let r = gmres(
            &CsrOperator::new(&a),
            &IdentityPrecond,
            &b,
            &mut x,
            &GmresOptions {
                restart: 10,
                rtol: 1e-14,
                max_iters: 7,
                ..Default::default()
            },
        );
        assert!(!r.converged);
        assert_eq!(r.iterations, 7);
    }

    #[test]
    fn krylov_iter_events_track_iterations() {
        let a = laplacian_2d(10);
        let n = a.nrows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let sink = EventSink::enabled();
        let r = gmres_with_events(
            &CsrOperator::new(&a),
            &IdentityPrecond,
            &b,
            &mut x,
            &GmresOptions {
                restart: 30,
                rtol: 1e-6,
                max_iters: 2000,
                ..Default::default()
            },
            &Registry::disabled(),
            &sink,
            7,
        );
        assert!(r.converged);
        let evs = sink.drain();
        assert_eq!(evs.len(), r.iterations);
        // Every record carries the enclosing step and a positive iteration
        // index; the trajectory as a whole descends toward the target.
        let mut norms = Vec::new();
        for ev in &evs {
            let EventRecord::KrylovIter {
                step,
                iter,
                residual_norm,
            } = ev
            else {
                panic!("unexpected event {ev:?}");
            };
            assert_eq!(*step, 7);
            assert!(*iter >= 1 && *iter <= r.iterations as u64);
            norms.push(*residual_norm);
        }
        assert!(norms.last().unwrap() < &(1e-6 * norm2(&b) * 1.01));
        assert!(norms.first().unwrap() > norms.last().unwrap());
    }

    #[test]
    fn threaded_solve_matches_sequential() {
        // Threaded matvecs and axpys are bitwise sequential; the dots are
        // ordered partial sums, so the whole Arnoldi process — and therefore
        // the iterate sequence — stays reproducible and lands on the same
        // solution to rounding.
        use fun3d_sparse::par::ParCtx;
        let a = laplacian_2d(14);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 * 0.4).sin()).collect();
        let base = GmresOptions {
            restart: 25,
            rtol: 1e-9,
            max_iters: 3000,
            ..Default::default()
        };
        let mut xs = vec![0.0; n];
        let rs = gmres(&CsrOperator::new(&a), &IdentityPrecond, &b, &mut xs, &base);
        assert!(rs.converged);
        for nthreads in [2usize, 3, 8] {
            let par = ParCtx::new(nthreads);
            let opts = GmresOptions { par, ..base };
            let mut xp = vec![0.0; n];
            let rp = gmres(
                &CsrOperator::with_par(&a, par),
                &IdentityPrecond,
                &b,
                &mut xp,
                &opts,
            );
            assert!(rp.converged, "nthreads={nthreads}: {rp:?}");
            assert_eq!(rp.iterations, rs.iterations, "nthreads={nthreads}");
            for (u, v) in xp.iter().zip(&xs) {
                assert!((u - v).abs() < 1e-10, "nthreads={nthreads}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn apply_and_precond_spans_carry_byte_traffic() {
        // With a telemetry registry on, the solver's apply/precond spans
        // must accumulate the analytic Eq. (1)/(2) traffic — one matvec's
        // (resp. one triangular solve's) worth per call — so a profiled run
        // derives achieved bandwidth per solver phase.
        let a = laplacian_2d(12);
        let n = a.nrows();
        let b = vec![1.0; n];
        let f = IluFactors::factor(&a, &IluOptions::with_fill(0)).unwrap();
        let pc = IluPrecond::new(f);
        let op = CsrOperator::new(&a);
        assert_eq!(op.traffic_bytes(), Some(a.spmv_traffic_bytes()));
        let pc_bytes = pc.traffic_bytes().unwrap();
        assert!(pc_bytes > 0.0);
        let tel = Registry::enabled(0);
        let mut x = vec![0.0; n];
        let r = gmres_with_telemetry(
            &op,
            &pc,
            &b,
            &mut x,
            &GmresOptions {
                rtol: 1e-8,
                max_iters: 500,
                ..Default::default()
            },
            &tel,
        );
        assert!(r.converged);
        let snap = tel.snapshot();
        let apply = snap.span("gmres/apply").expect("apply span");
        let expected_apply = apply.calls as f64 * a.spmv_traffic_bytes();
        assert!((apply.counter("bytes").unwrap() - expected_apply).abs() < 1e-6);
        let precond = snap.span("gmres/precond").expect("precond span");
        let expected_pc = precond.calls as f64 * pc_bytes;
        assert!((precond.counter("bytes").unwrap() - expected_pc).abs() < 1e-6);
        // The matrix-free operator declines: no footprint of its own.
        use crate::op::test_problems::Bratu1d;
        use crate::op::{FdJacobianOperator, PseudoTransientProblem};
        let p = Bratu1d::new(8, 0.0);
        let q = vec![0.0; 8];
        let mut r0 = vec![0.0; 8];
        p.residual(&q, &mut r0);
        let fd = FdJacobianOperator::new(&p, q, r0, vec![0.0; 8]);
        assert_eq!(fd.traffic_bytes(), None);
    }

    #[test]
    fn tighter_tolerance_takes_more_iterations() {
        let a = laplacian_2d(12);
        let n = a.nrows();
        let b = vec![1.0; n];
        let mut iters = Vec::new();
        for rtol in [1e-2, 1e-6, 1e-10] {
            let mut x = vec![0.0; n];
            let r = gmres(
                &CsrOperator::new(&a),
                &IdentityPrecond,
                &b,
                &mut x,
                &GmresOptions {
                    restart: 30,
                    rtol,
                    max_iters: 5000,
                    ..Default::default()
                },
            );
            assert!(r.converged);
            iters.push(r.iterations);
        }
        assert!(iters[0] < iters[1] && iters[1] < iters[2], "{iters:?}");
    }
}
