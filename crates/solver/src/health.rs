//! In-process solver health monitoring.
//!
//! The ΨNKS continuation can fail in ways that burn wall clock instead of
//! stopping: a NaN leaks into the residual and every later norm is NaN, the
//! residual blows up but `max_steps` is large, or the SER schedule wedges
//! (the line search rejects everything, CFL stops growing, the residual
//! plateaus).  The [`HealthMonitor`] watches the same per-step quantities
//! the event stream records — residual norm and accepted step length — and
//! classifies the first pathology it sees as a typed [`Anomaly`], letting
//! the solve abort gracefully with a structured verdict instead of spinning
//! to the step limit.
//!
//! Thresholds are deliberately conservative: a *healthy* solve — including
//! slow small-CFL induction phases and mild transient humps — must never
//! trip the monitor, because it is always on.  The monitor only reads
//! per-step scalars, so its presence is bitwise inert to the solve.

use std::collections::VecDeque;

/// Anomaly classes the monitor detects, ordered by how definitive they are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// The residual norm became NaN or infinite.
    NonFiniteResidual,
    /// The residual grew by [`HealthConfig::divergence_factor`] over the
    /// best norm seen so far.
    Divergence,
    /// The residual sat in a narrow band for a full window while still
    /// above the convergence target.
    Stagnation,
    /// The line search rejected every trial step (accepted step length 0)
    /// for several consecutive steps: the CFL schedule cannot advance.
    CflBreakdown,
}

impl AnomalyKind {
    /// Stable string tag used in `fun3d-events/1` anomaly records.
    pub fn tag(self) -> &'static str {
        match self {
            AnomalyKind::NonFiniteResidual => "non_finite_residual",
            AnomalyKind::Divergence => "divergence",
            AnomalyKind::Stagnation => "stagnation",
            AnomalyKind::CflBreakdown => "cfl_breakdown",
        }
    }

    /// Parse the stable tag.
    pub fn from_tag(s: &str) -> Option<Self> {
        match s {
            "non_finite_residual" => Some(AnomalyKind::NonFiniteResidual),
            "divergence" => Some(AnomalyKind::Divergence),
            "stagnation" => Some(AnomalyKind::Stagnation),
            "cfl_breakdown" => Some(AnomalyKind::CflBreakdown),
            _ => None,
        }
    }
}

/// One detected anomaly: what went wrong, where, and the evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// The anomaly class.
    pub kind: AnomalyKind,
    /// Pseudo-timestep it was detected at.
    pub step: u64,
    /// Residual norm at detection (may be NaN).
    pub residual_norm: f64,
    /// Human-readable evidence (thresholds crossed, window sizes).
    pub detail: String,
}

/// Detection thresholds.  The defaults are tuned so healthy solves — slow
/// induction phases included — never trip.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Divergence when `rnorm > divergence_factor * best_seen`.
    pub divergence_factor: f64,
    /// Stagnation window length in steps.
    pub stagnation_window: usize,
    /// Stagnation when `max/min` over the window is below this ratio (a
    /// band this narrow over a full window means no progress).
    pub stagnation_ratio: f64,
    /// CFL breakdown after this many consecutive zero-length steps.
    pub cfl_breakdown_steps: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            divergence_factor: 1e6,
            stagnation_window: 25,
            stagnation_ratio: 1.0005,
            cfl_breakdown_steps: 5,
        }
    }
}

/// Streaming anomaly detector over per-step (residual norm, step length)
/// observations.  Feed it each pseudo-timestep; the first anomaly is
/// returned once and the monitor latches (later observations return
/// `None`).
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    /// Initial residual norm (convergence is measured relative to it).
    r0: f64,
    /// Target relative reduction: residuals below `r0 * target` are
    /// converged territory and never count as stagnation.
    target_reduction: f64,
    best: f64,
    window: VecDeque<f64>,
    zero_steps: usize,
    tripped: bool,
}

impl HealthMonitor {
    /// A monitor for a solve starting at residual norm `r0` targeting
    /// `target_reduction` relative reduction.
    pub fn new(cfg: HealthConfig, r0: f64, target_reduction: f64) -> Self {
        Self {
            cfg,
            r0,
            target_reduction,
            best: if r0.is_finite() { r0 } else { f64::INFINITY },
            window: VecDeque::new(),
            zero_steps: 0,
            tripped: false,
        }
    }

    /// Observe one completed pseudo-timestep: the residual norm after the
    /// step and the accepted line-search step length.  Returns the first
    /// anomaly detected, once.
    pub fn observe(&mut self, step: u64, residual_norm: f64, step_length: f64) -> Option<Anomaly> {
        if self.tripped {
            return None;
        }
        let anomaly = self.classify(step, residual_norm, step_length);
        if anomaly.is_some() {
            self.tripped = true;
        }
        anomaly
    }

    fn classify(&mut self, step: u64, rnorm: f64, alpha: f64) -> Option<Anomaly> {
        if !rnorm.is_finite() {
            return Some(Anomaly {
                kind: AnomalyKind::NonFiniteResidual,
                step,
                residual_norm: rnorm,
                detail: format!("residual norm became {rnorm} at step {step}"),
            });
        }
        if rnorm > self.best * self.cfg.divergence_factor {
            return Some(Anomaly {
                kind: AnomalyKind::Divergence,
                step,
                residual_norm: rnorm,
                detail: format!(
                    "residual {rnorm:.3e} exceeds {:.0e}x the best norm seen ({:.3e})",
                    self.cfg.divergence_factor, self.best
                ),
            });
        }
        self.best = self.best.min(rnorm);

        if alpha == 0.0 {
            self.zero_steps += 1;
            if self.zero_steps >= self.cfg.cfl_breakdown_steps {
                return Some(Anomaly {
                    kind: AnomalyKind::CflBreakdown,
                    step,
                    residual_norm: rnorm,
                    detail: format!(
                        "line search rejected every trial for {} consecutive steps",
                        self.zero_steps
                    ),
                });
            }
        } else {
            self.zero_steps = 0;
        }

        self.window.push_back(rnorm);
        if self.window.len() > self.cfg.stagnation_window {
            self.window.pop_front();
        }
        let above_target = self.r0 > 0.0 && rnorm / self.r0 > self.target_reduction;
        if above_target && self.window.len() == self.cfg.stagnation_window {
            let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
            for &v in &self.window {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if lo > 0.0 && hi / lo < self.cfg.stagnation_ratio {
                return Some(Anomaly {
                    kind: AnomalyKind::Stagnation,
                    step,
                    residual_norm: rnorm,
                    detail: format!(
                        "residual within {:.2}% band over {} steps while {:.1e}x above target",
                        (self.cfg.stagnation_ratio - 1.0) * 100.0,
                        self.cfg.stagnation_window,
                        rnorm / self.r0 / self.target_reduction
                    ),
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> HealthConfig {
        HealthConfig {
            stagnation_window: 5,
            cfl_breakdown_steps: 3,
            ..HealthConfig::default()
        }
    }

    #[test]
    fn nan_residual_is_flagged_immediately() {
        let mut m = HealthMonitor::new(HealthConfig::default(), 1.0, 1e-10);
        assert!(m.observe(0, 0.5, 1.0).is_none());
        let a = m.observe(1, f64::NAN, 1.0).expect("NaN must trip");
        assert_eq!(a.kind, AnomalyKind::NonFiniteResidual);
        assert_eq!(a.step, 1);
        assert!(a.residual_norm.is_nan());
        // Latched: no second report.
        assert!(m.observe(2, f64::NAN, 1.0).is_none());
    }

    #[test]
    fn infinity_counts_as_non_finite() {
        let mut m = HealthMonitor::new(HealthConfig::default(), 1.0, 1e-10);
        let a = m.observe(0, f64::INFINITY, 1.0).unwrap();
        assert_eq!(a.kind, AnomalyKind::NonFiniteResidual);
    }

    #[test]
    fn divergence_measured_against_best_seen() {
        let mut m = HealthMonitor::new(HealthConfig::default(), 1.0, 1e-10);
        // Descend first so best < r0, then blow up relative to the best.
        assert!(m.observe(0, 1e-3, 1.0).is_none());
        assert!(m.observe(1, 0.9e-3, 1.0).is_none());
        // A mild transient hump is fine...
        assert!(m.observe(2, 5e-3, 1.0).is_none());
        // ...but 1e6x over the best is a blow-up.
        let a = m.observe(3, 1e4, 1.0).expect("divergence must trip");
        assert_eq!(a.kind, AnomalyKind::Divergence);
        assert!(a.detail.contains("best norm"));
    }

    #[test]
    fn stagnation_needs_full_window_above_target() {
        let mut m = HealthMonitor::new(fast_cfg(), 1.0, 1e-10);
        // Four flat steps: window not full yet.
        for s in 0..4 {
            assert!(m.observe(s, 0.5, 1.0).is_none(), "step {s}");
        }
        let a = m.observe(4, 0.5, 1.0).expect("flat full window trips");
        assert_eq!(a.kind, AnomalyKind::Stagnation);
        assert!(a.detail.contains("band over 5 steps"));
    }

    #[test]
    fn plateau_below_target_is_convergence_not_stagnation() {
        let mut m = HealthMonitor::new(fast_cfg(), 1.0, 1e-6);
        for s in 0..20 {
            assert!(
                m.observe(s, 1e-8, 1.0).is_none(),
                "converged plateau must not trip (step {s})"
            );
        }
    }

    #[test]
    fn slow_but_steady_descent_never_trips() {
        // 1% decrease per step: slow induction, but real progress — over a
        // 5-step window max/min is ~1.04, far above the 1.0005 band.
        let mut m = HealthMonitor::new(fast_cfg(), 1.0, 1e-10);
        let mut r = 1.0;
        for s in 0..200 {
            assert!(m.observe(s, r, 1.0).is_none(), "step {s}");
            r *= 0.99;
        }
    }

    #[test]
    fn consecutive_zero_steps_flag_cfl_breakdown() {
        let mut m = HealthMonitor::new(fast_cfg(), 1.0, 1e-10);
        // Interleaved recovery resets the run length.
        assert!(m.observe(0, 0.9, 0.0).is_none());
        assert!(m.observe(1, 0.8, 0.0).is_none());
        assert!(m.observe(2, 0.7, 1.0).is_none());
        assert!(m.observe(3, 0.7, 0.0).is_none());
        assert!(m.observe(4, 0.7, 0.0).is_none());
        let a = m.observe(5, 0.7, 0.0).expect("3 consecutive rejections");
        assert_eq!(a.kind, AnomalyKind::CflBreakdown);
        assert!(a.detail.contains("3 consecutive"));
    }

    #[test]
    fn kind_tags_round_trip() {
        for k in [
            AnomalyKind::NonFiniteResidual,
            AnomalyKind::Divergence,
            AnomalyKind::Stagnation,
            AnomalyKind::CflBreakdown,
        ] {
            assert_eq!(AnomalyKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(AnomalyKind::from_tag("bogus"), None);
    }
}
