//! The Newton–Krylov–Schwarz solver stack (Section 2.4 of the paper).
//!
//! A pseudo-transient Newton–Krylov–Schwarz (ΨNKS) method has four nested
//! levels, each with its own tunables:
//!
//! * **Pseudo-transient continuation** ([`pseudo`]) — advances the CFL number
//!   by the power-law SER heuristic
//!   `CFL_l = CFL_0 (||f(u_0)|| / ||f(u_{l-1})||)^p` (Figure 5's knobs:
//!   initial CFL and exponent `p`).
//! * **Inexact Newton** — each timestep solves the linear correction only to
//!   a loose tolerance (Section 2.4.2).
//! * **Krylov** ([`gmres`]) — restarted GMRES with modified Gram–Schmidt,
//!   right-preconditioned so true residual norms are available.
//! * **Schwarz** ([`precond`]) — block Jacobi / additive Schwarz / restricted
//!   additive Schwarz with ILU(k) subdomain solves; overlap and fill are the
//!   axes of Table 4.
//!
//! The stack is generic over a [`op::PseudoTransientProblem`] so it serves
//! both the real Euler discretization (via `fun3d-core`) and the small model
//! problems in the tests.

pub mod gmres;
pub mod health;
pub mod op;
pub mod precond;
pub mod pseudo;

pub use gmres::{gmres, gmres_with_telemetry, GmresOptions, GmresResult};
pub use health::{Anomaly, AnomalyKind, HealthConfig, HealthMonitor};
pub use op::{CsrOperator, LinearOperator, PseudoTransientProblem};
pub use precond::{AdditiveSchwarz, BlockIluPrecond, IdentityPrecond, IluPrecond, Preconditioner};
pub use pseudo::{
    solve_pseudo_transient, solve_pseudo_transient_instrumented, solve_pseudo_transient_warm,
    PhaseTimes, PrecondSpec, PseudoTransientOptions, SolveHistory, StepRecord, WarmStart,
};
