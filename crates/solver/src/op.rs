//! Operator and problem abstractions for the solver stack.

use fun3d_sparse::csr::CsrMatrix;
use fun3d_sparse::par::ParCtx;

/// A linear operator `y = A x`.
pub trait LinearOperator {
    /// Dimension.
    fn n(&self) -> usize;
    /// `y <- A x`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
    /// Analytic minimum memory traffic of one `apply` in bytes (the Eq. (1)
    /// perfect-cache bound), when the operator knows its own footprint.
    /// `None` for matrix-free operators whose traffic rides on the residual
    /// evaluation instead.  GMRES attaches this as a `bytes` counter on its
    /// `apply` spans so profiled solver runs get achieved-bandwidth rows.
    fn traffic_bytes(&self) -> Option<f64> {
        None
    }
}

/// A CSR matrix as an operator.
pub struct CsrOperator<'a> {
    a: &'a CsrMatrix,
    par: ParCtx,
}

impl<'a> CsrOperator<'a> {
    /// Wrap a square CSR matrix (sequential matvec).
    pub fn new(a: &'a CsrMatrix) -> Self {
        Self::with_par(a, ParCtx::seq())
    }

    /// Wrap a square CSR matrix, applying it with the given thread context
    /// (row-block-parallel matvec; bitwise identical to sequential).
    pub fn with_par(a: &'a CsrMatrix, par: ParCtx) -> Self {
        assert_eq!(a.nrows(), a.ncols());
        Self { a, par }
    }
}

impl LinearOperator for CsrOperator<'_> {
    fn n(&self) -> usize {
        self.a.nrows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.a.spmv_par(x, y, &self.par);
    }

    fn traffic_bytes(&self) -> Option<f64> {
        Some(self.a.spmv_traffic_bytes())
    }
}

/// The nonlinear problem a pseudo-transient Newton–Krylov–Schwarz solver
/// drives: a steady residual `R(q)`, its first-order analytic Jacobian (the
/// preconditioner basis), and the local-timestep scaling.
pub trait PseudoTransientProblem {
    /// Number of unknowns.
    fn n(&self) -> usize;

    /// Evaluate `R(q)` into `out` (the full-order spatial residual).
    fn residual(&self, q: &[f64], out: &mut [f64]);

    /// Assemble the first-order analytic Jacobian `dR/dq` at `q`.
    fn jacobian(&self, q: &[f64]) -> CsrMatrix;

    /// Per-unknown `V_i / dtau_i` at `CFL = 1`; the ΨNKS driver divides by
    /// the current CFL number and adds the result to the Jacobian diagonal.
    fn inverse_timestep_scale(&self, q: &[f64]) -> Vec<f64>;

    /// Hook: called when the driver switches discretization order during
    /// continuation (first -> second); default does nothing.
    fn set_second_order(&mut self, _enable: bool) {}
}

/// Matrix-free Jacobian-vector products by first-order finite differencing
/// of the residual: `J v ~ (R(q + eps v) - R(q)) / eps`, with the
/// pseudo-timestep diagonal added analytically.  This is the paper's
/// "matrix-free implementation [where] the Jacobian itself is never
/// explicitly needed".
pub struct FdJacobianOperator<'p, P: PseudoTransientProblem> {
    problem: &'p P,
    q: Vec<f64>,
    r0: Vec<f64>,
    /// Per-unknown diagonal shift `V_i / (CFL * dtau_i)`.
    shift: Vec<f64>,
    /// Scratch for the perturbed state/residual (interior mutability keeps
    /// the operator `&self` like any other).
    scratch: std::cell::RefCell<(Vec<f64>, Vec<f64>)>,
}

impl<'p, P: PseudoTransientProblem> FdJacobianOperator<'p, P> {
    /// Create at the linearization state `q` with base residual `r0` and the
    /// diagonal shift (may be all-zero for a pure steady Jacobian).
    pub fn new(problem: &'p P, q: Vec<f64>, r0: Vec<f64>, shift: Vec<f64>) -> Self {
        let n = problem.n();
        assert_eq!(q.len(), n);
        assert_eq!(r0.len(), n);
        assert_eq!(shift.len(), n);
        Self {
            problem,
            q,
            r0,
            shift,
            scratch: std::cell::RefCell::new((vec![0.0; n], vec![0.0; n])),
        }
    }
}

impl<P: PseudoTransientProblem> LinearOperator for FdJacobianOperator<'_, P> {
    fn n(&self) -> usize {
        self.q.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let norm_x = fun3d_sparse::vec_ops::norm2(x);
        if norm_x == 0.0 {
            y.iter_mut().for_each(|v| *v = 0.0);
            return;
        }
        // PETSc-style differencing parameter.
        let norm_q = fun3d_sparse::vec_ops::norm2(&self.q);
        let eps = 1e-7 * (1.0 + norm_q) / norm_x;
        let mut scratch = self.scratch.borrow_mut();
        let (qp, rp) = &mut *scratch;
        for i in 0..x.len() {
            qp[i] = self.q[i] + eps * x[i];
        }
        self.problem.residual(qp, rp);
        for i in 0..x.len() {
            y[i] = (rp[i] - self.r0[i]) / eps + self.shift[i] * x[i];
        }
    }
}

#[cfg(test)]
pub(crate) mod test_problems {
    use super::*;
    use fun3d_sparse::triplet::TripletMatrix;

    /// A small nonlinear reaction-diffusion style problem on a 1-D grid:
    /// `R_i(q) = (2 q_i - q_{i-1} - q_{i+1}) + alpha (exp(q_i) - 1) - f_i`,
    /// with Dirichlet-like ends folded in. Smooth, diagonally dominant for
    /// small alpha, and has an interesting Newton path for larger alpha.
    pub struct Bratu1d {
        pub n: usize,
        pub alpha: f64,
        pub f: Vec<f64>,
    }

    impl Bratu1d {
        pub fn new(n: usize, alpha: f64) -> Self {
            // Manufacture f so that q*_i = sin(pi i / (n+1)) is the solution.
            let qstar: Vec<f64> = (0..n)
                .map(|i| (std::f64::consts::PI * (i + 1) as f64 / (n + 1) as f64).sin())
                .collect();
            let mut me = Self {
                n,
                alpha,
                f: vec![0.0; n],
            };
            let mut r = vec![0.0; n];
            me.residual_raw(&qstar, &mut r);
            me.f = r;
            me
        }

        pub fn solution(&self) -> Vec<f64> {
            (0..self.n)
                .map(|i| (std::f64::consts::PI * (i + 1) as f64 / (self.n + 1) as f64).sin())
                .collect()
        }

        fn residual_raw(&self, q: &[f64], out: &mut [f64]) {
            let n = self.n;
            for i in 0..n {
                let left = if i > 0 { q[i - 1] } else { 0.0 };
                let right = if i + 1 < n { q[i + 1] } else { 0.0 };
                out[i] = 2.0 * q[i] - left - right + self.alpha * (q[i].exp() - 1.0);
            }
        }
    }

    impl PseudoTransientProblem for Bratu1d {
        fn n(&self) -> usize {
            self.n
        }

        fn residual(&self, q: &[f64], out: &mut [f64]) {
            self.residual_raw(q, out);
            for (o, f) in out.iter_mut().zip(&self.f) {
                *o -= f;
            }
        }

        fn jacobian(&self, q: &[f64]) -> CsrMatrix {
            let n = self.n;
            let mut t = TripletMatrix::new(n, n);
            for i in 0..n {
                t.push(i, i, 2.0 + self.alpha * q[i].exp());
                if i > 0 {
                    t.push(i, i - 1, -1.0);
                }
                if i + 1 < n {
                    t.push(i, i + 1, -1.0);
                }
            }
            t.to_csr()
        }

        fn inverse_timestep_scale(&self, _q: &[f64]) -> Vec<f64> {
            vec![1.0; self.n]
        }
    }

    #[test]
    fn bratu_solution_has_zero_residual() {
        let p = Bratu1d::new(20, 1.0);
        let q = p.solution();
        let mut r = vec![0.0; 20];
        p.residual(&q, &mut r);
        assert!(fun3d_sparse::vec_ops::norm2(&r) < 1e-12);
    }

    #[test]
    fn fd_operator_matches_assembled_jacobian() {
        let p = Bratu1d::new(15, 0.5);
        let q: Vec<f64> = (0..15).map(|i| 0.1 * (i as f64)).collect();
        let mut r0 = vec![0.0; 15];
        p.residual(&q, &mut r0);
        let jac = p.jacobian(&q);
        let shift = vec![0.0; 15];
        let fd = FdJacobianOperator::new(&p, q.clone(), r0, shift);
        let x: Vec<f64> = (0..15).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let mut y1 = vec![0.0; 15];
        let mut y2 = vec![0.0; 15];
        jac.spmv(&x, &mut y1);
        fd.apply(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-4 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn fd_operator_adds_shift() {
        let p = Bratu1d::new(10, 0.0);
        let q = vec![0.0; 10];
        let mut r0 = vec![0.0; 10];
        p.residual(&q, &mut r0);
        let shift = vec![100.0; 10];
        let fd = FdJacobianOperator::new(&p, q, r0, shift);
        let x = vec![1.0; 10];
        let mut y = vec![0.0; 10];
        fd.apply(&x, &mut y);
        // Diagonal shift dominates: y_i ~ 100 + small.
        for v in &y {
            assert!((v - 100.0).abs() < 3.0, "{v}");
        }
    }
}
