//! Preconditioners: ILU, block Jacobi, and (restricted) additive Schwarz.
//!
//! Table 4's axes live here: the number of subdomains, the ILU fill level of
//! the subdomain solver, and the overlap.  Block Jacobi is additive Schwarz
//! with zero overlap; RASM (Cai–Sarkis) applies the full overlapped
//! subdomain solve but *restricts* the correction to owned unknowns, halving
//! the communication of classic ASM — the variant PETSc-FUN3D uses.

use crate::op::LinearOperator;
use fun3d_sparse::bcsr::BcsrMatrix;
use fun3d_sparse::block_ilu::BlockIluFactors;
use fun3d_sparse::csr::CsrMatrix;
use fun3d_sparse::ilu::{IluError, IluFactors, IluOptions};
use fun3d_sparse::par::ParCtx;

/// Application of an approximate inverse: `z ~ A^{-1} r`.
pub trait Preconditioner {
    /// `z <- M^{-1} r`.
    fn apply(&self, r: &[f64], z: &mut [f64]);
    /// Analytic minimum memory traffic of one `apply` in bytes (the Eq. (2)
    /// perfect-cache bound for the triangular sweeps), when known.  GMRES
    /// attaches this as a `bytes` counter on its `precond` spans so profiled
    /// solver runs get achieved-bandwidth rows.
    fn traffic_bytes(&self) -> Option<f64> {
        None
    }
}

/// No preconditioning.
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Global ILU(k) — the single-subdomain limit.
pub struct IluPrecond {
    factors: IluFactors,
    par: ParCtx,
}

impl IluPrecond {
    /// Wrap existing factors.
    pub fn new(factors: IluFactors) -> Self {
        Self {
            factors,
            par: ParCtx::seq(),
        }
    }

    /// Factor `a` with the given options.
    pub fn factor(a: &CsrMatrix, opts: &IluOptions) -> Result<Self, IluError> {
        Ok(Self::new(IluFactors::factor(a, opts)?))
    }

    /// Apply with level-scheduled parallel triangular solves on this team
    /// (bitwise identical to the sequential sweep).
    pub fn with_par(mut self, par: ParCtx) -> Self {
        self.par = par;
        self
    }

    /// The underlying factors.
    pub fn factors(&self) -> &IluFactors {
        &self.factors
    }
}

impl Preconditioner for IluPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.factors.solve_par(r, z, &self.par);
    }

    fn traffic_bytes(&self) -> Option<f64> {
        Some(self.factors.solve_traffic_bytes())
    }
}

/// Point-block ILU(0) on the blocked matrix — the preconditioner
/// PETSc-FUN3D applies when structural blocking is active.
pub struct BlockIluPrecond {
    factors: BlockIluFactors,
    par: ParCtx,
}

impl BlockIluPrecond {
    /// Factor the BCSR form of `a` with block size `b`.
    pub fn factor(a: &CsrMatrix, b: usize) -> Result<Self, IluError> {
        let ab = BcsrMatrix::from_csr(a, b);
        Ok(Self::new(BlockIluFactors::factor(&ab)?))
    }

    /// Wrap existing factors.
    pub fn new(factors: BlockIluFactors) -> Self {
        Self {
            factors,
            par: ParCtx::seq(),
        }
    }

    /// Apply with level-scheduled parallel triangular solves on this team
    /// (bitwise identical to the sequential sweep).
    pub fn with_par(mut self, par: ParCtx) -> Self {
        self.par = par;
        self
    }

    /// The underlying factors.
    pub fn factors(&self) -> &BlockIluFactors {
        &self.factors
    }
}

impl Preconditioner for BlockIluPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.factors.solve_par(r, z, &self.par);
    }

    fn traffic_bytes(&self) -> Option<f64> {
        Some(self.factors.solve_traffic_bytes())
    }
}

/// One Schwarz subdomain: its extended row set (owned first), the number of
/// owned rows, and the ILU factors of the local submatrix.
struct Subdomain {
    /// Global row indices, owned rows first then overlap layers.
    rows: Vec<usize>,
    /// How many of `rows` are owned.
    nowned: usize,
    factors: IluFactors,
}

/// Additive Schwarz with ILU(k) subdomain solves.
pub struct AdditiveSchwarz {
    n: usize,
    subdomains: Vec<Subdomain>,
    /// RASM: restrict corrections to owned unknowns (one communication per
    /// application instead of two).
    restricted: bool,
    overlap: usize,
}

impl AdditiveSchwarz {
    /// Build from a matrix and disjoint owned-row sets covering `0..n`.
    ///
    /// `overlap` layers are added through the matrix adjacency (PETSc's
    /// `MatIncreaseOverlap`); each extended submatrix is factored with
    /// ILU(`opts.fill_level`).
    pub fn new(
        a: &CsrMatrix,
        owned_sets: &[Vec<usize>],
        overlap: usize,
        opts: &IluOptions,
        restricted: bool,
    ) -> Result<Self, IluError> {
        let n = a.nrows();
        debug_assert_eq!(
            owned_sets.iter().map(Vec::len).sum::<usize>(),
            n,
            "owned sets must cover all rows"
        );
        let mut subdomains = Vec::with_capacity(owned_sets.len());
        for owned in owned_sets {
            let rows = expand_rows_by_pattern(a, owned, overlap);
            let local = a.extract_principal_submatrix(&rows);
            let factors = IluFactors::factor(&local, opts)?;
            subdomains.push(Subdomain {
                rows,
                nowned: owned.len(),
                factors,
            });
        }
        Ok(Self {
            n,
            subdomains,
            restricted,
            overlap,
        })
    }

    /// Block Jacobi: zero overlap (restriction is then irrelevant).
    pub fn block_jacobi(
        a: &CsrMatrix,
        owned_sets: &[Vec<usize>],
        opts: &IluOptions,
    ) -> Result<Self, IluError> {
        Self::new(a, owned_sets, 0, opts, true)
    }

    /// Number of subdomains.
    pub fn nsubdomains(&self) -> usize {
        self.subdomains.len()
    }

    /// The overlap this preconditioner was built with.
    pub fn overlap(&self) -> usize {
        self.overlap
    }

    /// Total factor storage across subdomains (overlap costs memory —
    /// "both increases consume more memory").
    pub fn total_factor_nnz(&self) -> usize {
        self.subdomains.iter().map(|s| s.factors.nnz()).sum()
    }

    /// Refactor all subdomain matrices from a new global matrix with the
    /// same pattern.
    pub fn refactor(&mut self, a: &CsrMatrix) -> Result<(), IluError> {
        for s in &mut self.subdomains {
            let local = a.extract_principal_submatrix(&s.rows);
            s.factors.refactor(&local)?;
        }
        Ok(())
    }
}

impl Preconditioner for AdditiveSchwarz {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n);
        assert_eq!(z.len(), self.n);
        z.iter_mut().for_each(|v| *v = 0.0);
        let mut rl = Vec::new();
        let mut zl = Vec::new();
        for s in &self.subdomains {
            rl.clear();
            rl.extend(s.rows.iter().map(|&g| r[g]));
            zl.resize(rl.len(), 0.0);
            s.factors.solve(&rl, &mut zl);
            let take = if self.restricted {
                s.nowned
            } else {
                s.rows.len()
            };
            for (l, &g) in s.rows.iter().enumerate().take(take) {
                z[g] += zl[l];
            }
        }
    }

    fn traffic_bytes(&self) -> Option<f64> {
        Some(
            self.subdomains
                .iter()
                .map(|s| s.factors.solve_traffic_bytes())
                .sum(),
        )
    }
}

/// Blanket impl so `&P` works wherever a preconditioner is expected.
impl<P: Preconditioner + ?Sized> Preconditioner for &P {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        (**self).apply(r, z);
    }

    fn traffic_bytes(&self) -> Option<f64> {
        (**self).traffic_bytes()
    }
}

/// Blanket impl so `&A` works wherever an operator is expected.
impl<A: LinearOperator + ?Sized> LinearOperator for &A {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (**self).apply(x, y);
    }

    fn traffic_bytes(&self) -> Option<f64> {
        (**self).traffic_bytes()
    }
}

/// Expand a row set through the matrix pattern `levels` times; returns the
/// extended set, owned rows first (in their given order) then each layer in
/// ascending order.
fn expand_rows_by_pattern(a: &CsrMatrix, owned: &[usize], levels: usize) -> Vec<usize> {
    let mut in_set = vec![false; a.nrows()];
    for &r in owned {
        in_set[r] = true;
    }
    let mut rows = owned.to_vec();
    let mut frontier: Vec<usize> = owned.to_vec();
    for _ in 0..levels {
        let mut next = Vec::new();
        for &r in &frontier {
            for &c in a.row_cols(r) {
                let c = c as usize;
                if !in_set[c] {
                    in_set[c] = true;
                    next.push(c);
                }
            }
        }
        next.sort_unstable();
        rows.extend_from_slice(&next);
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmres::{gmres, GmresOptions};
    use crate::op::CsrOperator;
    use fun3d_sparse::triplet::TripletMatrix;
    use fun3d_sparse::vec_ops::norm2;

    fn laplacian_2d(nx: usize) -> CsrMatrix {
        let n = nx * nx;
        let mut t = TripletMatrix::new(n, n);
        let id = |i: usize, j: usize| i * nx + j;
        for i in 0..nx {
            for j in 0..nx {
                t.push(id(i, j), id(i, j), 4.0);
                if i > 0 {
                    t.push(id(i, j), id(i - 1, j), -1.0);
                }
                if i + 1 < nx {
                    t.push(id(i, j), id(i + 1, j), -1.0);
                }
                if j > 0 {
                    t.push(id(i, j), id(i, j - 1), -1.0);
                }
                if j + 1 < nx {
                    t.push(id(i, j), id(i, j + 1), -1.0);
                }
            }
        }
        t.to_csr()
    }

    fn strip_partition(n: usize, k: usize) -> Vec<Vec<usize>> {
        (0..k)
            .map(|p| (p * n / k..(p + 1) * n / k).collect())
            .collect()
    }

    fn solve_iters<P: Preconditioner>(a: &CsrMatrix, pc: &P) -> usize {
        let n = a.nrows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let r = gmres(
            &CsrOperator::new(a),
            pc,
            &b,
            &mut x,
            &GmresOptions {
                restart: 30,
                rtol: 1e-8,
                max_iters: 3000,
                ..Default::default()
            },
        );
        assert!(r.converged, "{r:?}");
        // Verify the solution actually solves the system.
        let mut res = vec![0.0; n];
        a.spmv(&x, &mut res);
        for (ri, bi) in res.iter_mut().zip(&b) {
            *ri -= bi;
        }
        assert!(norm2(&res) <= 1e-7 * norm2(&b));
        r.iterations
    }

    #[test]
    fn single_subdomain_asm_equals_global_ilu() {
        let a = laplacian_2d(10);
        let n = a.nrows();
        let owned = vec![(0..n).collect::<Vec<_>>()];
        let asm = AdditiveSchwarz::block_jacobi(&a, &owned, &IluOptions::with_fill(0)).unwrap();
        let ilu = IluPrecond::factor(&a, &IluOptions::with_fill(0)).unwrap();
        let r = vec![1.0; n];
        let mut z1 = vec![0.0; n];
        let mut z2 = vec![0.0; n];
        asm.apply(&r, &mut z1);
        ilu.apply(&r, &mut z2);
        for (u, v) in z1.iter().zip(&z2) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn more_subdomains_means_more_iterations() {
        // The algorithmic degradation eta_alg of Table 3: block-iterative
        // convergence decays with block count.
        let a = laplacian_2d(20);
        let n = a.nrows();
        let mut iters = Vec::new();
        for k in [1usize, 4, 16] {
            let owned = strip_partition(n, k);
            let pc = AdditiveSchwarz::block_jacobi(&a, &owned, &IluOptions::with_fill(0)).unwrap();
            iters.push(solve_iters(&a, &pc));
        }
        assert!(
            iters[0] <= iters[1] && iters[1] <= iters[2],
            "iterations must grow with subdomains: {iters:?}"
        );
        assert!(iters[2] > iters[0], "{iters:?}");
    }

    #[test]
    fn overlap_reduces_iterations() {
        let a = laplacian_2d(20);
        let n = a.nrows();
        let owned = strip_partition(n, 8);
        let mut iters = Vec::new();
        for overlap in [0usize, 1, 2] {
            let pc =
                AdditiveSchwarz::new(&a, &owned, overlap, &IluOptions::with_fill(0), true).unwrap();
            iters.push(solve_iters(&a, &pc));
        }
        assert!(
            iters[1] <= iters[0] && iters[2] <= iters[1],
            "overlap helps convergence: {iters:?}"
        );
        assert!(iters[2] < iters[0], "{iters:?}");
    }

    #[test]
    fn fill_reduces_iterations() {
        let a = laplacian_2d(20);
        let n = a.nrows();
        let owned = strip_partition(n, 4);
        let mut iters = Vec::new();
        for fill in [0usize, 1, 2] {
            let pc =
                AdditiveSchwarz::block_jacobi(&a, &owned, &IluOptions::with_fill(fill)).unwrap();
            iters.push(solve_iters(&a, &pc));
        }
        assert!(
            iters[2] < iters[0],
            "fill improves the subdomain solves: {iters:?}"
        );
    }

    #[test]
    fn overlap_consumes_memory() {
        let a = laplacian_2d(16);
        let n = a.nrows();
        let owned = strip_partition(n, 4);
        let p0 = AdditiveSchwarz::new(&a, &owned, 0, &IluOptions::with_fill(0), true).unwrap();
        let p2 = AdditiveSchwarz::new(&a, &owned, 2, &IluOptions::with_fill(0), true).unwrap();
        assert!(
            p2.total_factor_nnz() > p0.total_factor_nnz(),
            "overlapped factors must be larger"
        );
    }

    #[test]
    fn rasm_and_asm_both_converge() {
        let a = laplacian_2d(16);
        let n = a.nrows();
        let owned = strip_partition(n, 8);
        let rasm = AdditiveSchwarz::new(&a, &owned, 1, &IluOptions::with_fill(0), true).unwrap();
        let asm = AdditiveSchwarz::new(&a, &owned, 1, &IluOptions::with_fill(0), false).unwrap();
        let ir = solve_iters(&a, &rasm);
        let ia = solve_iters(&a, &asm);
        // Both work; RASM is typically no worse than ASM.
        assert!(ir <= ia + 5, "RASM {ir} vs ASM {ia}");
    }

    #[test]
    fn refactor_tracks_matrix_changes() {
        let a = laplacian_2d(8);
        let n = a.nrows();
        let owned = strip_partition(n, 2);
        let mut pc = AdditiveSchwarz::block_jacobi(&a, &owned, &IluOptions::with_fill(0)).unwrap();
        let mut a2 = a.clone();
        a2.scale(4.0);
        pc.refactor(&a2).unwrap();
        // Preconditioner of 4A applied to r equals (1/4) * precond of A.
        let r: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
        let mut z_scaled = vec![0.0; n];
        pc.apply(&r, &mut z_scaled);
        let pc1 = AdditiveSchwarz::block_jacobi(&a, &owned, &IluOptions::with_fill(0)).unwrap();
        let mut z = vec![0.0; n];
        pc1.apply(&r, &mut z);
        for (u, v) in z.iter().zip(&z_scaled) {
            assert!((u - 4.0 * v).abs() < 1e-10);
        }
    }

    #[test]
    fn expand_rows_matches_graph_distance() {
        let a = laplacian_2d(5); // 25 rows, 5-point stencil
        let rows = expand_rows_by_pattern(&a, &[12], 1);
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![7, 11, 12, 13, 17]);
        assert_eq!(rows[0], 12, "owned rows stay first");
        let rows2 = expand_rows_by_pattern(&a, &[12], 2);
        assert_eq!(rows2.len(), 13); // distance-2 diamond in a 5x5 grid
    }
}
