//! Pseudo-transient Newton–Krylov–Schwarz continuation (ΨNKS).
//!
//! Newton's method on a stiff steady-state residual needs globalization; the
//! paper uses pseudo-timestepping with the switched evolution/relaxation
//! (SER) power law of Van Leer & Mulder:
//!
//! `CFL_l = CFL_0 * (||f(u_0)|| / ||f(u_{l-1})||)^p`
//!
//! Each pseudo-timestep solves one inexact-Newton correction
//! `(V/dtau + dR/dq) delta = -R(q)` with preconditioned GMRES, where the
//! matrix is the *first-order analytic* Jacobian plus the timestep diagonal,
//! and (optionally, Section 2.4.1) the residual switches from first- to
//! second-order discretization after a prescribed residual reduction.
//! Figure 5 sweeps `CFL_0`; Section 2.4.1 discusses `p` (0.75 with shocks,
//! up to 1.5 for first-order phases).

use crate::gmres::{gmres_with_events, GmresOptions};
use crate::health::{Anomaly, HealthConfig, HealthMonitor};
use crate::op::{CsrOperator, FdJacobianOperator, PseudoTransientProblem};
use crate::precond::{AdditiveSchwarz, BlockIluPrecond, IluPrecond, Preconditioner};
use fun3d_sparse::bcsr::BcsrMatrix;
use fun3d_sparse::ilu::{IluFactors, IluOptions};
use fun3d_sparse::vec_ops::norm2;
use fun3d_telemetry::events::{EventRecord, EventSink};
use fun3d_telemetry::Registry;
use std::sync::Arc;

/// Which preconditioner the Krylov solver uses.
#[derive(Debug, Clone)]
pub enum PrecondSpec {
    /// Global ILU(k) (the single-subdomain limit; Table 1's solve phase).
    Ilu(IluOptions),
    /// Point-block ILU(0) on the BCSR form with the given block size — the
    /// preconditioner the paper's code uses once structural blocking is on.
    BlockIlu {
        /// Block size (the number of unknowns per mesh point).
        block: usize,
    },
    /// Additive Schwarz over the given disjoint owned-row sets.
    Schwarz {
        /// Disjoint row sets covering all unknowns.
        owned_sets: Vec<Vec<usize>>,
        /// Overlap layers (0 = block Jacobi).
        overlap: usize,
        /// Subdomain ILU options.
        ilu: IluOptions,
        /// Restricted ASM (Cai–Sarkis) vs classic ASM.
        restricted: bool,
    },
}

/// How the inner (Krylov) tolerance is chosen each Newton step.
///
/// Section 2.4.2: "We have experimented with progressively tighter
/// tolerances near convergence, and saved Newton iterations thereby, but did
/// not save time relative to cases with loose and constant tolerance."
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Forcing {
    /// Fixed relative tolerance (the paper's production choice, 0.001-0.01).
    #[default]
    Constant,
    /// Eisenstat-Walker choice 2: `eta_l = gamma * (||R_l|| / ||R_{l-1}||)^2`,
    /// clamped to `[eta_min, eta_max]` — tightens as the residual falls.
    EisenstatWalker {
        /// Scale factor (typically 0.9).
        gamma: f64,
        /// Tolerance floor.
        eta_min: f64,
        /// Tolerance ceiling.
        eta_max: f64,
    },
}

/// Options for the ΨNKS solve.
#[derive(Debug, Clone)]
pub struct PseudoTransientOptions {
    /// Initial CFL number (Figure 5's swept parameter).
    pub cfl0: f64,
    /// SER exponent `p` (close to unity; 0.75–1.5 per Section 2.4.1).
    pub cfl_exponent: f64,
    /// CFL ceiling (the paper lets it reach 1e5).
    pub cfl_max: f64,
    /// Pseudo-timestep limit.
    pub max_steps: usize,
    /// Stop when `||R|| / ||R_0||` drops below this.
    pub target_reduction: f64,
    /// Krylov solve options (inexact-Newton inner tolerance lives in
    /// `krylov.rtol`, typically 0.001–0.01).
    pub krylov: GmresOptions,
    /// Preconditioner specification.
    pub precond: PrecondSpec,
    /// Switch the residual to second order once `||R||/||R_0||` falls below
    /// this (None = keep the initial order throughout).
    pub second_order_switch: Option<f64>,
    /// Use matrix-free FD Jacobian-vector products for the Krylov operator
    /// (the assembled first-order matrix still builds the preconditioner).
    pub matrix_free: bool,
    /// Enable a backtracking line search on the Newton update.
    pub line_search: bool,
    /// Run the Krylov matvec through block-CSR storage with this block size
    /// (the "structural blocking" of Table 1). Ignored under `matrix_free`.
    pub bcsr_block: Option<usize>,
    /// Inner-tolerance strategy (constant vs Eisenstat-Walker).
    pub forcing: Forcing,
    /// Rebuild the preconditioner every `pc_refresh` steps, reusing the old
    /// factors in between (the paper's "refresh frequency for Jacobian
    /// preconditioner" Newton parameter; the Krylov *operator* is always
    /// current). 1 = rebuild every step.
    pub pc_refresh: usize,
}

impl Default for PseudoTransientOptions {
    fn default() -> Self {
        Self {
            cfl0: 10.0,
            cfl_exponent: 1.0,
            cfl_max: 1e5,
            max_steps: 200,
            target_reduction: 1e-10,
            krylov: GmresOptions::default(),
            precond: PrecondSpec::Ilu(IluOptions::with_fill(1)),
            second_order_switch: None,
            matrix_free: false,
            line_search: true,
            bcsr_block: None,
            forcing: Forcing::Constant,
            pc_refresh: 1,
        }
    }
}

/// Wall time per solver phase, summed over all pseudo-timesteps (seconds).
/// Named replacement for the old bare `(f64, f64, f64, f64)` tuple.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseTimes {
    /// Residual (flux) evaluations, including line-search trials.
    pub residual: f64,
    /// Jacobian assembly and diagonal shifting.
    pub jacobian: f64,
    /// Preconditioner construction (ILU factorization / Schwarz setup).
    pub precond: f64,
    /// Krylov (GMRES) solve time.
    pub krylov: f64,
}

impl PhaseTimes {
    /// Total accounted wall time.
    pub fn total(&self) -> f64 {
        self.residual + self.jacobian + self.precond + self.krylov
    }
}

/// One pseudo-timestep's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord {
    /// Step index (0-based).
    pub step: usize,
    /// CFL number used.
    pub cfl: f64,
    /// Residual norm *before* the step.
    pub residual_norm: f64,
    /// Krylov iterations spent.
    pub linear_iters: usize,
    /// Whether the linear solve met its tolerance.
    pub linear_converged: bool,
    /// Line-search step length actually taken.
    pub step_length: f64,
    /// Wall time in residual evaluations this step (seconds).
    pub t_residual: f64,
    /// Wall time assembling the Jacobian (seconds).
    pub t_jacobian: f64,
    /// Wall time building the preconditioner (seconds).
    pub t_precond: f64,
    /// Wall time in the Krylov solve (seconds).
    pub t_krylov: f64,
}

/// The convergence history of a ΨNKS solve.
#[derive(Debug, Clone)]
pub struct SolveHistory {
    /// Per-step records.
    pub steps: Vec<StepRecord>,
    /// Whether the target reduction was reached.
    pub converged: bool,
    /// Final residual norm.
    pub final_residual: f64,
    /// Initial residual norm.
    pub initial_residual: f64,
    /// The anomaly that aborted the solve, if the health monitor tripped
    /// (NaN/Inf residual, divergence, stagnation, or CFL breakdown).  A
    /// healthy solve — converged or simply out of steps — leaves this `None`.
    pub anomaly: Option<Anomaly>,
}

impl SolveHistory {
    /// Total Krylov iterations across all steps (Table 4's "Linear Its").
    pub fn total_linear_iters(&self) -> usize {
        self.steps.iter().map(|s| s.linear_iters).sum()
    }

    /// Number of pseudo-timesteps taken.
    pub fn nsteps(&self) -> usize {
        self.steps.len()
    }

    /// Total wall time per phase across all steps, with names attached.
    pub fn phases(&self) -> PhaseTimes {
        self.steps
            .iter()
            .fold(PhaseTimes::default(), |acc, s| PhaseTimes {
                residual: acc.residual + s.t_residual,
                jacobian: acc.jacobian + s.t_jacobian,
                precond: acc.precond + s.t_precond,
                krylov: acc.krylov + s.t_krylov,
            })
    }

    /// Total wall time accounted across phases (seconds).
    pub fn total_time(&self) -> f64 {
        self.phases().total()
    }

    /// Mean wall time per pseudo-timestep (Table 1's "Time/Step").
    pub fn time_per_step(&self) -> f64 {
        if self.steps.is_empty() {
            0.0
        } else {
            self.total_time() / self.steps.len() as f64
        }
    }

    /// Residual reduction achieved.
    pub fn reduction(&self) -> f64 {
        if self.initial_residual == 0.0 {
            1.0
        } else {
            self.final_residual / self.initial_residual
        }
    }
}

/// BCSR matvec operator for the structural-blocking variant.
struct BcsrOperator<'a> {
    a: &'a BcsrMatrix,
    par: fun3d_sparse::par::ParCtx,
}

impl crate::op::LinearOperator for BcsrOperator<'_> {
    fn n(&self) -> usize {
        self.a.nrows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.a.spmv_par(x, y, &self.par);
    }
}

enum BuiltPrecond {
    Ilu(Box<IluPrecond>),
    BlockIlu(Box<BlockIluPrecond>),
    Schwarz(AdditiveSchwarz),
}

impl Preconditioner for BuiltPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            BuiltPrecond::Ilu(p) => p.apply(r, z),
            BuiltPrecond::BlockIlu(p) => p.apply(r, z),
            BuiltPrecond::Schwarz(p) => p.apply(r, z),
        }
    }

    fn traffic_bytes(&self) -> Option<f64> {
        match self {
            BuiltPrecond::Ilu(p) => p.traffic_bytes(),
            BuiltPrecond::BlockIlu(p) => p.traffic_bytes(),
            BuiltPrecond::Schwarz(p) => p.traffic_bytes(),
        }
    }
}

/// Immutable warm-start templates shared across solves of the same scenario
/// family (same mesh adjacency, ordering, physics, and layout — i.e. the same
/// Jacobian *pattern*).
///
/// Both templates are pattern-only accelerators: the ILU template skips the
/// symbolic `ILU(k)` analysis and level scheduling (numerics are redone with
/// [`IluFactors::refactor`], which runs the identical elimination as a fresh
/// factorization), and the BCSR template skips the block-structure merge
/// (values are rewritten in full by `refill_from_csr`).  A warm solve is
/// therefore **bitwise identical** to a cold one; templates that do not match
/// the problem (dimension, fill level, storage, block size, nnz) are ignored
/// rather than trusted.
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    /// Symbolic `ILU(k)` template for [`PrecondSpec::Ilu`]; cloned and
    /// numerically refactored against each step's shifted Jacobian.
    pub ilu: Option<Arc<IluFactors>>,
    /// Block-structure template for the [`PseudoTransientOptions::bcsr_block`]
    /// operator; cloned once and refilled from the point CSR each step.
    pub bcsr: Option<Arc<BcsrMatrix>>,
}

impl WarmStart {
    /// No templates: every solve pays full symbolic setup (the cold path).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any template is present.
    pub fn is_empty(&self) -> bool {
        self.ilu.is_none() && self.bcsr.is_none()
    }
}

/// Run ΨNKS continuation on `problem` starting from `q` (updated in place).
pub fn solve_pseudo_transient<P: PseudoTransientProblem>(
    problem: &mut P,
    q: &mut [f64],
    opts: &PseudoTransientOptions,
) -> SolveHistory {
    solve_pseudo_transient_instrumented(problem, q, opts, &Registry::disabled())
}

/// [`solve_pseudo_transient`] with profiling: records an `nks` span tree
/// (`nks/residual`, `nks/jacobian`, `nks/precond`, `nks/krylov/gmres/...`)
/// plus `steps` / `linear_iters` counters in `tel`.  Instrumentation only
/// observes the clock, so the residual history is bitwise identical to the
/// uninstrumented solve.
pub fn solve_pseudo_transient_instrumented<P: PseudoTransientProblem>(
    problem: &mut P,
    q: &mut [f64],
    opts: &PseudoTransientOptions,
    tel: &Registry,
) -> SolveHistory {
    solve_pseudo_transient_with_events(problem, q, opts, tel, &EventSink::disabled())
}

/// [`solve_pseudo_transient_instrumented`] that additionally emits one
/// [`EventRecord::NewtonStep`] per pseudo-timestep (mirroring the
/// [`StepRecord`] pushed into the history, plus the step's linear forcing
/// tolerance η) and per-iteration [`EventRecord::KrylovIter`] records from
/// the inner GMRES solves into `events`.
pub fn solve_pseudo_transient_with_events<P: PseudoTransientProblem>(
    problem: &mut P,
    q: &mut [f64],
    opts: &PseudoTransientOptions,
    tel: &Registry,
    events: &EventSink,
) -> SolveHistory {
    solve_pseudo_transient_warm(problem, q, opts, tel, events, &WarmStart::none())
}

/// [`solve_pseudo_transient_with_events`] seeded with [`WarmStart`] templates
/// from a previous solve on the same scenario family.  With matching
/// templates the per-solve symbolic setup (ILU(k) analysis, level schedules,
/// BCSR block-structure merge) is skipped; the numeric results are bitwise
/// identical to the cold path either way.
pub fn solve_pseudo_transient_warm<P: PseudoTransientProblem>(
    problem: &mut P,
    q: &mut [f64],
    opts: &PseudoTransientOptions,
    tel: &Registry,
    events: &EventSink,
    warm: &WarmStart,
) -> SolveHistory {
    let _solve_span = tel.span("nks");
    let n = problem.n();
    assert_eq!(q.len(), n);
    let mut r = vec![0.0; n];
    let t0 = std::time::Instant::now();
    {
        let _g = tel.span("residual");
        problem.residual(q, &mut r);
    }
    let mut t_residual_carry = t0.elapsed().as_secs_f64();
    let r0_norm = norm2(&r);
    let mut history = SolveHistory {
        steps: Vec::new(),
        converged: false,
        final_residual: r0_norm,
        initial_residual: r0_norm,
        anomaly: None,
    };
    if r0_norm == 0.0 {
        history.converged = true;
        return history;
    }
    // Health monitoring is always on: it reads only per-step scalars the
    // solve already computes, so a healthy run is bitwise unaffected.
    let mut monitor = HealthMonitor::new(HealthConfig::default(), r0_norm, opts.target_reduction);
    // CI fault-injection hooks, read once per solve.  PANIC unwinds mid-step
    // (exercising the flight recorder's panic dump); NAN poisons the residual
    // norm (exercising anomaly detection and graceful abort).
    let panic_at = fault_step("FUN3D_PANIC_AT_STEP");
    let nan_at = fault_step("FUN3D_NAN_AT_STEP");
    if !r0_norm.is_finite() {
        let anomaly = monitor
            .observe(0, r0_norm, 0.0)
            .expect("non-finite initial residual must trip the monitor");
        abort_with_anomaly(&mut history, anomaly, tel, events);
        return history;
    }
    let mut switched = opts.second_order_switch.is_none();
    // SER reference norm; reset when the discretization order switches
    // ("within each residual reduction phase" per Section 2.4.1).
    let mut ser_ref = r0_norm;
    let mut rnorm = r0_norm;
    let mut rhs = vec![0.0; n];
    let mut delta = vec![0.0; n];
    let mut q_trial = vec![0.0; n];
    let mut r_trial = vec![0.0; n];
    // Blocked operator cache: the symbolic block structure is computed once
    // and only values are refilled each step.  A matching warm template
    // provides the structure up front (refill overwrites every value, so the
    // seeded matrix is indistinguishable from a freshly built one).
    let mut bcsr_cache: Option<BcsrMatrix> = match (opts.bcsr_block, &warm.bcsr) {
        (Some(b), Some(t)) if t.block_size() == b && t.nrows() == n => Some((**t).clone()),
        _ => None,
    };
    // Lagged preconditioner (kept across steps when pc_refresh > 1).
    let mut pc_cache: Option<BuiltPrecond> = None;
    let mut pc_age = usize::MAX; // force a build on the first step

    for step in 0..opts.max_steps {
        if rnorm / r0_norm <= opts.target_reduction {
            history.converged = true;
            break;
        }
        if panic_at == Some(step) {
            // Record elapsed time of the open span stack first so a report
            // snapshotted by an outer panic handler still parses, then unwind
            // (the flight recorder's panic hook dumps the rings).
            tel.flush_open();
            panic!("injected panic at pseudo-step {step} (FUN3D_PANIC_AT_STEP)");
        }
        // Order continuation: switch to second order once the residual has
        // dropped far enough (and recompute the residual with the new
        // stencil; the norm typically jumps).
        if !switched {
            if let Some(thresh) = opts.second_order_switch {
                if rnorm / r0_norm < thresh {
                    problem.set_second_order(true);
                    switched = true;
                    let _g = tel.span("residual");
                    problem.residual(q, &mut r);
                    rnorm = norm2(&r);
                    ser_ref = rnorm;
                }
            }
        }
        // SER CFL law (relative to the current residual-reduction phase).
        let cfl = (opts.cfl0 * (ser_ref / rnorm).powf(opts.cfl_exponent)).min(opts.cfl_max);

        // Shifted first-order Jacobian.
        let t0 = std::time::Instant::now();
        let jac_span = tel.span("jacobian");
        let d = problem.inverse_timestep_scale(q);
        let mut jac = problem.jacobian(q);
        jac.shift_diagonal_by(1.0 / cfl, &d);
        drop(jac_span);
        let t_jacobian = t0.elapsed().as_secs_f64();

        // Preconditioner from the shifted matrix, rebuilt only every
        // `pc_refresh` steps (lagged preconditioning — the paper's "refresh
        // frequency for Jacobian preconditioner" knob).
        let t0 = std::time::Instant::now();
        let pc_span = tel.span("precond");
        if pc_age >= opts.pc_refresh.max(1) {
            pc_cache = Some(match &opts.precond {
                PrecondSpec::Ilu(ilu) => {
                    // A matching warm template skips the symbolic ILU(k)
                    // analysis: clone + refactor runs the same numeric
                    // elimination as a fresh factorization on the same
                    // pattern, so the factors are bitwise identical.
                    let template = warm
                        .ilu
                        .as_deref()
                        .filter(|t| t.is_template_for(jac.nrows(), ilu));
                    let factors = match template {
                        Some(t) => {
                            let mut f = t.clone();
                            f.refactor(&jac).expect("ILU refactorization failed");
                            f
                        }
                        None => IluFactors::factor(&jac, ilu).expect("ILU factorization failed"),
                    };
                    BuiltPrecond::Ilu(Box::new(IluPrecond::new(factors).with_par(opts.krylov.par)))
                }
                PrecondSpec::BlockIlu { block } => BuiltPrecond::BlockIlu(Box::new(
                    BlockIluPrecond::factor(&jac, *block)
                        .expect("block ILU factorization failed")
                        .with_par(opts.krylov.par),
                )),
                PrecondSpec::Schwarz {
                    owned_sets,
                    overlap,
                    ilu,
                    restricted,
                } => BuiltPrecond::Schwarz(
                    AdditiveSchwarz::new(&jac, owned_sets, *overlap, ilu, *restricted)
                        .expect("Schwarz setup failed"),
                ),
            });
            pc_age = 0;
        }
        pc_age += 1;
        let pc = pc_cache.as_ref().unwrap();
        drop(pc_span);
        let t_precond = t0.elapsed().as_secs_f64();

        // Inexact Newton: J delta = -R, with the step's forcing term.
        let mut krylov = opts.krylov;
        if let Forcing::EisenstatWalker {
            gamma,
            eta_min,
            eta_max,
        } = opts.forcing
        {
            if let Some(prev) = history.steps.last() {
                let ratio = rnorm / prev.residual_norm.max(1e-300);
                krylov.rtol = (gamma * ratio * ratio).clamp(eta_min, eta_max);
            } else {
                krylov.rtol = eta_max;
            }
        }
        for (o, ri) in rhs.iter_mut().zip(&r) {
            *o = -ri;
        }
        delta.iter_mut().for_each(|v| *v = 0.0);
        let t0 = std::time::Instant::now();
        let krylov_span = tel.span("krylov");
        let nstep = step as u64;
        let lin = if opts.matrix_free {
            let shift: Vec<f64> = d.iter().map(|&v| v / cfl).collect();
            let op = FdJacobianOperator::new(&*problem, q.to_vec(), r.clone(), shift);
            gmres_with_events(&op, pc, &rhs, &mut delta, &krylov, tel, events, nstep)
        } else if let Some(b) = opts.bcsr_block {
            match &mut bcsr_cache {
                // A seeded template whose source pattern disagrees (wrong
                // nnz) is discarded, not trusted.
                Some(cached) if cached.csr_nnz() == jac.nnz() => cached.refill_from_csr(&jac),
                _ => bcsr_cache = Some(BcsrMatrix::from_csr(&jac, b)),
            }
            let op = BcsrOperator {
                a: bcsr_cache.as_ref().unwrap(),
                par: krylov.par,
            };
            gmres_with_events(&op, pc, &rhs, &mut delta, &krylov, tel, events, nstep)
        } else {
            let op = CsrOperator::with_par(&jac, krylov.par);
            gmres_with_events(&op, pc, &rhs, &mut delta, &krylov, tel, events, nstep)
        };
        drop(krylov_span);
        tel.counter("linear_iters", lin.iterations as f64);
        let t_krylov = t0.elapsed().as_secs_f64();

        // Line search. Pseudo-transient continuation is globalized by the
        // timestep, not the search, so backtracking only guards against
        // outright blow-ups: try shrinking steps while the residual grows by
        // more than 20%, but if nothing small helps, take the *full* step
        // anyway (a mild transient hump is normal and creeping with tiny
        // steps stalls the continuation).
        let t0 = std::time::Instant::now();
        let res_span = tel.span("residual");
        let mut alpha = 1.0f64;
        let mut accepted = false;
        let mut full: Option<(f64, Vec<f64>, Vec<f64>)> = None;
        for k in 0..4 {
            for i in 0..n {
                q_trial[i] = q[i] + alpha * delta[i];
            }
            problem.residual(&q_trial, &mut r_trial);
            let tnorm = norm2(&r_trial);
            if k == 0 && tnorm.is_finite() {
                full = Some((tnorm, q_trial.clone(), r_trial.clone()));
            }
            if tnorm.is_finite() && (!opts.line_search || tnorm <= 1.2 * rnorm) {
                q.copy_from_slice(&q_trial);
                r.copy_from_slice(&r_trial);
                rnorm = tnorm;
                accepted = true;
                break;
            }
            alpha *= 0.5;
        }
        if !accepted {
            if let Some((tnorm, qf, rf)) = full {
                // Fall back to the full step rather than creep.
                alpha = 1.0;
                q.copy_from_slice(&qf);
                r.copy_from_slice(&rf);
                rnorm = tnorm;
            } else {
                // Not even finite: reject; CFL stays low since the residual
                // did not drop.
                alpha = 0.0;
            }
        }
        drop(res_span);
        if nan_at == Some(step) {
            // Injected fault: poison the residual norm the way a NaN leaking
            // out of a flux evaluation would.
            rnorm = f64::NAN;
        }
        let t_residual = t_residual_carry + t0.elapsed().as_secs_f64();
        t_residual_carry = 0.0;
        history.steps.push(StepRecord {
            step,
            cfl,
            residual_norm: rnorm,
            linear_iters: lin.iterations,
            linear_converged: lin.converged,
            step_length: alpha,
            t_residual,
            t_jacobian,
            t_precond,
            t_krylov,
        });
        events.emit(EventRecord::NewtonStep {
            step: nstep,
            residual_norm: rnorm,
            cfl,
            gmres_iters: lin.iterations as u64,
            eta: krylov.rtol,
            t_residual,
            t_jacobian,
            t_precond,
            t_krylov,
        });
        history.final_residual = rnorm;
        if let Some(anomaly) = monitor.observe(nstep, rnorm, alpha) {
            abort_with_anomaly(&mut history, anomaly, tel, events);
            break;
        }
    }
    if rnorm / r0_norm <= opts.target_reduction {
        history.converged = true;
    }
    tel.counter("steps", history.steps.len() as f64);
    history
}

/// Parse a fault-injection step index from the environment (CI hooks).
fn fault_step(var: &str) -> Option<usize> {
    std::env::var(var).ok().and_then(|v| v.parse().ok())
}

/// Graceful structured abort: emit the typed anomaly event, count it, dump
/// the flight recorder (if armed), and record the verdict in the history.
/// The solve returns normally — callers decide the process exit.
fn abort_with_anomaly(
    history: &mut SolveHistory,
    anomaly: Anomaly,
    tel: &Registry,
    events: &EventSink,
) {
    events.emit(EventRecord::Anomaly {
        kind: anomaly.kind.tag().to_string(),
        step: anomaly.step,
        residual_norm: anomaly.residual_norm,
        detail: anomaly.detail.clone(),
    });
    tel.counter("anomalies", 1.0);
    fun3d_telemetry::blackbox::dump_now(anomaly.kind.tag());
    history.anomaly = Some(anomaly);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::test_problems::Bratu1d;

    fn default_opts() -> PseudoTransientOptions {
        PseudoTransientOptions {
            cfl0: 1.0,
            cfl_exponent: 1.0,
            cfl_max: 1e8,
            max_steps: 60,
            target_reduction: 1e-10,
            krylov: GmresOptions {
                restart: 30,
                rtol: 1e-3,
                max_iters: 300,
                ..Default::default()
            },
            precond: PrecondSpec::Ilu(IluOptions::with_fill(0)),
            second_order_switch: None,
            matrix_free: false,
            line_search: true,
            bcsr_block: None,
            forcing: Forcing::Constant,
            pc_refresh: 1,
        }
    }

    #[test]
    fn converges_to_manufactured_solution() {
        let mut p = Bratu1d::new(40, 1.0);
        let mut q = vec![0.0; 40];
        let h = solve_pseudo_transient(&mut p, &mut q, &default_opts());
        assert!(h.converged, "reduction {}", h.reduction());
        let sol = p.solution();
        for (a, b) in q.iter().zip(&sol) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn cfl_grows_as_residual_falls() {
        let mut p = Bratu1d::new(30, 1.0);
        let mut q = vec![0.0; 30];
        let h = solve_pseudo_transient(&mut p, &mut q, &default_opts());
        assert!(h.converged);
        // SER: CFL is nondecreasing whenever the residual decreases.
        let cfls: Vec<f64> = h.steps.iter().map(|s| s.cfl).collect();
        assert!(cfls.last().unwrap() > cfls.first().unwrap());
        // Residual history is (eventually) decreasing.
        let first = h.steps.first().unwrap().residual_norm;
        assert!(h.final_residual < 1e-8 * first.max(1.0));
    }

    #[test]
    fn larger_initial_cfl_converges_in_fewer_steps() {
        // Figure 5's message, on the smooth model problem.
        let mut steps = Vec::new();
        for cfl0 in [0.1, 1.0, 10.0] {
            let mut p = Bratu1d::new(30, 0.5);
            let mut q = vec![0.0; 30];
            let mut opts = default_opts();
            opts.cfl0 = cfl0;
            let h = solve_pseudo_transient(&mut p, &mut q, &opts);
            assert!(h.converged, "cfl0={cfl0}");
            steps.push(h.nsteps());
        }
        assert!(
            steps[0] > steps[1] && steps[1] >= steps[2],
            "small CFL means long induction: {steps:?}"
        );
    }

    #[test]
    fn matrix_free_matches_assembled() {
        let run = |mf: bool| {
            let mut p = Bratu1d::new(25, 1.0);
            let mut q = vec![0.0; 25];
            let mut opts = default_opts();
            opts.matrix_free = mf;
            let h = solve_pseudo_transient(&mut p, &mut q, &opts);
            (h, q)
        };
        let (h1, q1) = run(false);
        let (h2, q2) = run(true);
        assert!(h1.converged && h2.converged);
        for (a, b) in q1.iter().zip(&q2) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn schwarz_preconditioned_nks_converges() {
        let n = 40;
        let mut p = Bratu1d::new(n, 0.8);
        let mut q = vec![0.0; n];
        let mut opts = default_opts();
        opts.precond = PrecondSpec::Schwarz {
            owned_sets: (0..4)
                .map(|k| (k * n / 4..(k + 1) * n / 4).collect())
                .collect(),
            overlap: 1,
            ilu: IluOptions::with_fill(0),
            restricted: true,
        };
        let h = solve_pseudo_transient(&mut p, &mut q, &opts);
        assert!(h.converged, "reduction {}", h.reduction());
        assert!(h.total_linear_iters() > 0);
    }

    #[test]
    fn higher_exponent_accelerates_cfl_growth() {
        let run = |pexp: f64| {
            let mut p = Bratu1d::new(30, 0.5);
            let mut q = vec![0.0; 30];
            let mut opts = default_opts();
            opts.cfl0 = 0.5;
            opts.cfl_exponent = pexp;
            let h = solve_pseudo_transient(&mut p, &mut q, &opts);
            assert!(h.converged);
            h.nsteps()
        };
        let slow = run(0.75);
        let fast = run(1.5);
        assert!(fast <= slow, "p=1.5 ({fast}) should beat p=0.75 ({slow})");
    }

    #[test]
    fn eisenstat_walker_saves_newton_steps() {
        let run = |forcing: Forcing| {
            let mut p = Bratu1d::new(30, 1.0);
            let mut q = vec![0.0; 30];
            let mut opts = default_opts();
            opts.krylov.rtol = 1e-1; // loose constant baseline
            opts.forcing = forcing;
            let h = solve_pseudo_transient(&mut p, &mut q, &opts);
            assert!(h.converged, "{forcing:?}");
            (h.nsteps(), h.total_linear_iters())
        };
        let (steps_c, _) = run(Forcing::Constant);
        let (steps_ew, _) = run(Forcing::EisenstatWalker {
            gamma: 0.9,
            eta_min: 1e-6,
            eta_max: 0.5,
        });
        // The paper's observation: tighter tolerances near convergence save
        // Newton iterations (time is a separate question).
        assert!(steps_ew <= steps_c, "EW {steps_ew} vs constant {steps_c}");
    }

    #[test]
    fn exact_initial_guess_returns_immediately() {
        let mut p = Bratu1d::new(20, 1.0);
        let mut q = p.solution();
        let h = solve_pseudo_transient(&mut p, &mut q, &default_opts());
        assert!(h.converged);
        assert!(h.nsteps() <= 1);
    }

    #[test]
    fn lagged_preconditioner_still_converges() {
        let run = |refresh: usize| {
            let mut p = Bratu1d::new(30, 1.0);
            let mut q = vec![0.0; 30];
            let mut opts = default_opts();
            opts.pc_refresh = refresh;
            let h = solve_pseudo_transient(&mut p, &mut q, &opts);
            assert!(h.converged, "refresh={refresh}: {:.2e}", h.reduction());
            (h.nsteps(), h.total_linear_iters(), q)
        };
        let (s1, l1, q1) = run(1);
        let (s4, l4, q4) = run(4);
        // A stale preconditioner costs at most extra Krylov/Newton work, not
        // correctness: same solution, possibly more iterations.
        for (a, b) in q1.iter().zip(&q4) {
            assert!((a - b).abs() < 1e-5);
        }
        assert!(s4 <= 3 * s1.max(1));
        assert!(
            l4 + 1 >= l1,
            "lagging shouldn't reduce linear work: {l4} vs {l1}"
        );
    }

    #[test]
    fn newton_step_events_mirror_history() {
        let mut p = Bratu1d::new(25, 1.0);
        let mut q = vec![0.0; 25];
        let sink = EventSink::enabled();
        let h = solve_pseudo_transient_with_events(
            &mut p,
            &mut q,
            &default_opts(),
            &Registry::disabled(),
            &sink,
        );
        assert!(h.converged);
        let evs = sink.drain();
        let steps: Vec<&EventRecord> = evs
            .iter()
            .filter(|e| matches!(e, EventRecord::NewtonStep { .. }))
            .collect();
        assert_eq!(steps.len(), h.nsteps());
        for (rec, ev) in h.steps.iter().zip(&steps) {
            let EventRecord::NewtonStep {
                step,
                residual_norm,
                cfl,
                gmres_iters,
                eta,
                ..
            } = ev
            else {
                unreachable!()
            };
            assert_eq!(*step, rec.step as u64);
            assert_eq!(*residual_norm, rec.residual_norm);
            assert_eq!(*cfl, rec.cfl);
            assert_eq!(*gmres_iters, rec.linear_iters as u64);
            // Constant forcing: η is the configured Krylov tolerance.
            assert_eq!(*eta, default_opts().krylov.rtol);
        }
        // Krylov iterations ride along, totalling the history's count.
        let kry = evs
            .iter()
            .filter(|e| matches!(e, EventRecord::KrylovIter { .. }))
            .count();
        assert_eq!(kry, h.total_linear_iters());
        // Event emission must not perturb the solve itself.
        let mut p2 = Bratu1d::new(25, 1.0);
        let mut q2 = vec![0.0; 25];
        let h2 = solve_pseudo_transient(&mut p2, &mut q2, &default_opts());
        assert_eq!(q, q2);
        assert_eq!(h.final_residual, h2.final_residual);
    }

    #[test]
    fn warm_ilu_template_is_bitwise_identical_to_cold() {
        let run = |warm: &WarmStart| {
            let mut p = Bratu1d::new(30, 1.0);
            let mut q = vec![0.0; 30];
            let h = solve_pseudo_transient_warm(
                &mut p,
                &mut q,
                &default_opts(),
                &Registry::disabled(),
                &EventSink::disabled(),
                warm,
            );
            (h, q)
        };
        let (hc, qc) = run(&WarmStart::none());
        // The template comes from the *unshifted* initial Jacobian: the
        // pseudo-timestep shift only changes diagonal values, never the
        // pattern, so the symbolic structure matches every step matrix.
        let p = Bratu1d::new(30, 1.0);
        let jac = p.jacobian(&vec![0.0; 30]);
        let template = IluFactors::factor(&jac, &IluOptions::with_fill(0)).unwrap();
        let warm = WarmStart {
            ilu: Some(Arc::new(template)),
            bcsr: None,
        };
        assert!(!warm.is_empty());
        let (hw, qw) = run(&warm);
        assert!(hc.converged && hw.converged);
        assert_eq!(qc, qw, "warm solution must be bitwise identical");
        assert_eq!(hc.nsteps(), hw.nsteps());
        assert_eq!(hc.final_residual, hw.final_residual);
        for (a, b) in hc.steps.iter().zip(&hw.steps) {
            assert_eq!(a.residual_norm, b.residual_norm);
            assert_eq!(a.linear_iters, b.linear_iters);
            assert_eq!(a.cfl, b.cfl);
        }
    }

    #[test]
    fn warm_bcsr_template_is_bitwise_identical_to_cold() {
        let mut opts = default_opts();
        opts.bcsr_block = Some(5);
        let run = |warm: &WarmStart, opts: &PseudoTransientOptions| {
            let mut p = Bratu1d::new(30, 1.0);
            let mut q = vec![0.0; 30];
            let h = solve_pseudo_transient_warm(
                &mut p,
                &mut q,
                opts,
                &Registry::disabled(),
                &EventSink::disabled(),
                warm,
            );
            (h, q)
        };
        let (hc, qc) = run(&WarmStart::none(), &opts);
        let p = Bratu1d::new(30, 1.0);
        let jac = p.jacobian(&vec![0.0; 30]);
        let warm = WarmStart {
            ilu: None,
            bcsr: Some(Arc::new(BcsrMatrix::from_csr(&jac, 5))),
        };
        let (hw, qw) = run(&warm, &opts);
        assert!(hc.converged && hw.converged);
        assert_eq!(qc, qw);
        assert_eq!(hc.final_residual, hw.final_residual);
    }

    #[test]
    fn mismatched_warm_templates_are_ignored() {
        // Wrong fill level, wrong dimension, and a BCSR template with a
        // foreign pattern: all must fall back to the cold path, not corrupt
        // or panic.
        let p = Bratu1d::new(30, 1.0);
        let jac = p.jacobian(&vec![0.0; 30]);
        let wrong_fill = IluFactors::factor(&jac, &IluOptions::with_fill(2)).unwrap();
        let small = Bratu1d::new(20, 1.0);
        let wrong_dim =
            IluFactors::factor(&small.jacobian(&[0.0; 20]), &IluOptions::with_fill(0)).unwrap();
        // Diagonal-only pattern: same n and block size, different nnz.
        let eye = fun3d_sparse::csr::CsrMatrix::identity(30);
        let foreign_bcsr = BcsrMatrix::from_csr(&eye, 5);
        let mut opts = default_opts();
        opts.bcsr_block = Some(5);
        for warm in [
            WarmStart {
                ilu: Some(Arc::new(wrong_fill)),
                bcsr: None,
            },
            WarmStart {
                ilu: Some(Arc::new(wrong_dim)),
                bcsr: Some(Arc::new(foreign_bcsr)),
            },
        ] {
            let mut p = Bratu1d::new(30, 1.0);
            let mut q = vec![0.0; 30];
            let h = solve_pseudo_transient_warm(
                &mut p,
                &mut q,
                &opts,
                &Registry::disabled(),
                &EventSink::disabled(),
                &warm,
            );
            assert!(h.converged, "reduction {}", h.reduction());
            let mut p2 = Bratu1d::new(30, 1.0);
            let mut q2 = vec![0.0; 30];
            let h2 = solve_pseudo_transient(&mut p2, &mut q2, &opts);
            assert_eq!(q, q2, "ignored template must leave results untouched");
            assert_eq!(h.final_residual, h2.final_residual);
        }
    }

    #[test]
    fn history_records_are_complete() {
        let mut p = Bratu1d::new(20, 1.0);
        let mut q = vec![0.0; 20];
        let h = solve_pseudo_transient(&mut p, &mut q, &default_opts());
        for (i, s) in h.steps.iter().enumerate() {
            assert_eq!(s.step, i);
            assert!(s.cfl > 0.0);
            assert!(s.residual_norm.is_finite());
            assert!(s.step_length > 0.0);
        }
    }

    #[test]
    fn healthy_solves_report_no_anomaly() {
        // The monitor is always on; none of the standard solves — including
        // the slow small-CFL induction case — may trip it.
        for cfl0 in [0.1, 1.0, 10.0] {
            let mut p = Bratu1d::new(30, 0.5);
            let mut q = vec![0.0; 30];
            let mut opts = default_opts();
            opts.cfl0 = cfl0;
            let h = solve_pseudo_transient(&mut p, &mut q, &opts);
            assert!(h.converged, "cfl0={cfl0}");
            assert!(h.anomaly.is_none(), "cfl0={cfl0}: {:?}", h.anomaly);
        }
    }

    #[test]
    fn non_finite_initial_residual_aborts_with_anomaly() {
        // A NaN already in the initial state must produce a structured
        // verdict, not max_steps of NaN algebra.
        let mut p = Bratu1d::new(20, 1.0);
        let mut q = vec![0.0; 20];
        q[7] = f64::NAN;
        let sink = EventSink::enabled();
        let h = solve_pseudo_transient_with_events(
            &mut p,
            &mut q,
            &default_opts(),
            &Registry::disabled(),
            &sink,
        );
        assert!(!h.converged);
        assert_eq!(h.nsteps(), 0, "must abort before stepping");
        let anomaly = h.anomaly.expect("NaN initial residual must be flagged");
        assert_eq!(anomaly.kind, crate::health::AnomalyKind::NonFiniteResidual);
        // The typed anomaly event rides the stream for post-mortem tools.
        let evs = sink.drain();
        assert!(
            evs.iter().any(
                |e| matches!(e, EventRecord::Anomaly { kind, .. } if kind == "non_finite_residual")
            ),
            "anomaly event missing: {evs:?}"
        );
    }

    #[test]
    fn armed_flight_recorder_is_bitwise_inert() {
        // The ISSUE's pin: recorder + monitor on changes no numerical result.
        let run = || {
            let mut p = Bratu1d::new(25, 1.0);
            let mut q = vec![0.0; 25];
            let tel = Registry::enabled(0);
            let sink = EventSink::enabled();
            let h =
                solve_pseudo_transient_with_events(&mut p, &mut q, &default_opts(), &tel, &sink);
            (h, q)
        };
        let (h_off, q_off) = run();
        fun3d_telemetry::blackbox::arm(512, None);
        let (h_on, q_on) = run();
        fun3d_telemetry::blackbox::disarm();
        assert!(h_off.converged && h_on.converged);
        assert_eq!(q_off, q_on, "recorder must not perturb the solution");
        assert_eq!(h_off.final_residual, h_on.final_residual);
        assert_eq!(h_off.nsteps(), h_on.nsteps());
        for (a, b) in h_off.steps.iter().zip(&h_on.steps) {
            assert_eq!(a.residual_norm, b.residual_norm);
            assert_eq!(a.linear_iters, b.linear_iters);
            assert_eq!(a.cfl, b.cfl);
        }
        // And the armed run actually captured the final spans.
        let dump = fun3d_telemetry::blackbox::dump_string("test")
            .expect("armed run must leave ring contents");
        assert!(dump.contains("fun3d-blackbox/1"));
        assert!(dump.contains("krylov"), "rings should hold solver spans");
    }
}
