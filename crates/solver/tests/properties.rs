//! Property-based tests for the Krylov/Schwarz solver stack.

use fun3d_solver::gmres::{gmres, GmresOptions};
use fun3d_solver::op::CsrOperator;
use fun3d_solver::precond::{AdditiveSchwarz, IdentityPrecond, IluPrecond};
use fun3d_sparse::csr::CsrMatrix;
use fun3d_sparse::ilu::IluOptions;
use fun3d_sparse::triplet::TripletMatrix;
use fun3d_sparse::vec_ops::norm2;
use proptest::prelude::*;

/// Random diagonally dominant sparse matrix.
fn dd_matrix(max_n: usize) -> impl Strategy<Value = CsrMatrix> {
    (8..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, -1.0f64..1.0), 2 * n..5 * n).prop_map(move |es| {
            let mut t = TripletMatrix::new(n, n);
            let mut rowsum = vec![0.0; n];
            for (i, j, v) in es {
                if i != j {
                    t.push(i, j, v);
                    rowsum[i] += v.abs();
                }
            }
            for i in 0..n {
                if i > 0 {
                    t.push(i, i - 1, -0.5);
                    rowsum[i] += 0.5;
                }
                t.push(i, i, rowsum[i] + 1.0);
            }
            t.to_csr()
        })
    })
}

fn solve(a: &CsrMatrix, b: &[f64], rtol: f64) -> (Vec<f64>, usize, bool) {
    let mut x = vec![0.0; a.nrows()];
    let r = gmres(
        &CsrOperator::new(a),
        &IdentityPrecond,
        b,
        &mut x,
        &GmresOptions {
            restart: 30,
            rtol,
            max_iters: 4000,
            ..Default::default()
        },
    );
    (x, r.iterations, r.converged)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GMRES always meets the tolerance it reports meeting.
    #[test]
    fn gmres_tolerance_is_honest(a in dd_matrix(40)) {
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) - 4.0).collect();
        let (x, _, conv) = solve(&a, &b, 1e-7);
        prop_assert!(conv);
        let mut r = vec![0.0; n];
        a.spmv(&x, &mut r);
        for (ri, bi) in r.iter_mut().zip(&b) {
            *ri -= bi;
        }
        prop_assert!(norm2(&r) <= 1e-7 * norm2(&b) * 1.0001);
    }

    /// ILU preconditioning never increases the iteration count on these
    /// diagonally dominant systems.
    #[test]
    fn ilu_never_hurts(a in dd_matrix(36)) {
        let n = a.nrows();
        let b = vec![1.0; n];
        let (_, its_id, c1) = solve(&a, &b, 1e-7);
        let pc = IluPrecond::factor(&a, &IluOptions::with_fill(0)).unwrap();
        let mut x = vec![0.0; n];
        let r = gmres(
            &CsrOperator::new(&a),
            &pc,
            &b,
            &mut x,
            &GmresOptions { restart: 30, rtol: 1e-7, max_iters: 4000, ..Default::default() },
        );
        prop_assert!(c1 && r.converged);
        prop_assert!(r.iterations <= its_id + 2, "ILU {} vs none {}", r.iterations, its_id);
    }

    /// The Schwarz preconditioner with any split of the rows still yields a
    /// convergent iteration whose solution verifies.
    #[test]
    fn schwarz_any_split_converges(a in dd_matrix(32), k in 2usize..6) {
        let n = a.nrows();
        let owned: Vec<Vec<usize>> = (0..k)
            .map(|p| (0..n).filter(|i| i % k == p).collect())
            .collect();
        let pc = AdditiveSchwarz::block_jacobi(&a, &owned, &IluOptions::with_fill(0)).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut x = vec![0.0; n];
        let r = gmres(
            &CsrOperator::new(&a),
            &pc,
            &b,
            &mut x,
            &GmresOptions { restart: 30, rtol: 1e-8, max_iters: 5000, ..Default::default() },
        );
        prop_assert!(r.converged, "{:?}", r);
        let mut res = vec![0.0; n];
        a.spmv(&x, &mut res);
        for (ri, bi) in res.iter_mut().zip(&b) {
            *ri -= bi;
        }
        prop_assert!(norm2(&res) <= 1e-7 * norm2(&b));
    }

    /// Restarted GMRES with a tiny restart still converges (just slower).
    #[test]
    fn small_restart_still_converges(a in dd_matrix(28)) {
        let n = a.nrows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let r = gmres(
            &CsrOperator::new(&a),
            &IdentityPrecond,
            &b,
            &mut x,
            &GmresOptions { restart: 3, rtol: 1e-6, max_iters: 8000, ..Default::default() },
        );
        prop_assert!(r.converged, "{:?}", r);
    }

    /// Solving with the solution as the initial guess costs zero iterations.
    #[test]
    fn warm_start_is_free(a in dd_matrix(30)) {
        let n = a.nrows();
        let xtrue: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xtrue, &mut b);
        let mut x = xtrue.clone();
        let r = gmres(
            &CsrOperator::new(&a),
            &IdentityPrecond,
            &b,
            &mut x,
            &GmresOptions { restart: 20, rtol: 1e-6, max_iters: 100, ..Default::default() },
        );
        prop_assert!(r.converged);
        prop_assert_eq!(r.iterations, 0);
    }
}
