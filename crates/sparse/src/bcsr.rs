//! Block compressed sparse row (BCSR) storage — the PETSc `BAIJ` analogue.
//!
//! "Structural blocking" (Section 2.1.2 of the paper): once the field
//! variables at a grid point are interlaced, the Jacobian of a `b`-component
//! PDE system decomposes into dense `b x b` blocks, one per pair of adjacent
//! mesh points.  Storing the matrix block-wise divides the column-index
//! array by `b*b` relative to point CSR — the reduction of integer loads and
//! the register-level reuse of `x` sub-vectors are what Table 1's "Structural
//! Blocking" column measures.

use crate::blockspec::{analyze, BlockKernel, BlockStructure, BlockStructureStats};
use crate::csr::CsrMatrix;
use crate::par::ParCtx;
use std::ops::Range;

/// A square-blocked sparse matrix with dense `b x b` blocks in row-major
/// order within each block.
#[derive(Debug, Clone, PartialEq)]
pub struct BcsrMatrix {
    /// Number of block rows.
    nbrows: usize,
    /// Number of block columns.
    nbcols: usize,
    /// Block size `b`.
    b: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    /// Blocks, `b*b` values each, row-major within the block.
    values: Vec<f64>,
    /// When built via [`BcsrMatrix::from_csr`]: for each nonzero of the
    /// source CSR matrix, its destination slot in `values` — makes
    /// [`BcsrMatrix::refill_from_csr`] a straight permutation copy.
    csr_value_map: Vec<u32>,
    /// Micro-kernel tier selected at assembly time (`FUN3D_BLOCK_KERNEL`).
    kernel: BlockKernel,
    /// Repeated-structure analysis, present iff `kernel` is `Batched`.
    structure: Option<BlockStructure>,
}

impl BcsrMatrix {
    /// Build from raw block-CSR arrays.
    ///
    /// # Panics
    /// Panics on inconsistent arrays.
    pub fn from_raw(
        nbrows: usize,
        nbcols: usize,
        b: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert!(b >= 1, "block size must be >= 1");
        assert_eq!(row_ptr.len(), nbrows + 1);
        assert_eq!(
            values.len(),
            col_idx.len() * b * b,
            "values must hold b*b per block"
        );
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len());
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr not monotone"
        );
        assert!(col_idx.iter().all(|&c| (c as usize) < nbcols));
        let kernel = BlockKernel::from_env();
        let structure = (kernel == BlockKernel::Batched).then(|| analyze(&row_ptr, &col_idx));
        Self {
            nbrows,
            nbcols,
            b,
            row_ptr,
            col_idx,
            values,
            csr_value_map: Vec::new(),
            kernel,
            structure,
        }
    }

    /// Re-select the micro-kernel tier (normally chosen from
    /// `FUN3D_BLOCK_KERNEL` at assembly time).  Re-runs the structure
    /// analysis when switching into `Batched`, drops it when leaving.
    pub fn with_kernel(mut self, kernel: BlockKernel) -> Self {
        self.kernel = kernel;
        self.structure =
            (kernel == BlockKernel::Batched).then(|| analyze(&self.row_ptr, &self.col_idx));
        self
    }

    /// The micro-kernel tier this matrix dispatches to.
    pub fn kernel(&self) -> BlockKernel {
        self.kernel
    }

    /// Repeated-structure statistics (template hit rate, batch lengths);
    /// `None` unless the `Batched` tier is selected.
    pub fn structure_stats(&self) -> Option<BlockStructureStats> {
        self.structure.as_ref().map(|s| s.stats())
    }

    /// Convert a point CSR matrix into BCSR with block size `b`.
    ///
    /// A block is stored whenever *any* of its `b*b` point entries is stored;
    /// absent point entries within a stored block become explicit zeros (this
    /// is exactly what `MatConvert` to BAIJ does, and is the source of the
    /// slight nnz inflation blocking trades for fewer index loads).
    ///
    /// # Panics
    /// Panics if the dimensions are not multiples of `b`.
    pub fn from_csr(a: &CsrMatrix, b: usize) -> Self {
        assert!(b >= 1);
        assert_eq!(a.nrows() % b, 0, "rows not a multiple of block size");
        assert_eq!(a.ncols() % b, 0, "cols not a multiple of block size");
        let nbrows = a.nrows() / b;
        let nbcols = a.ncols() / b;
        let mut row_ptr = Vec::with_capacity(nbrows + 1);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        let mut csr_value_map = vec![0u32; a.nnz()];
        row_ptr.push(0usize);
        // For each block row, merge the block-column sets of its b point rows.
        let mut bcols: Vec<u32> = Vec::new();
        for bi in 0..nbrows {
            bcols.clear();
            for r in 0..b {
                for &c in a.row_cols(bi * b + r) {
                    bcols.push(c / b as u32);
                }
            }
            bcols.sort_unstable();
            bcols.dedup();
            let base_block = col_idx.len();
            col_idx.extend_from_slice(&bcols);
            values.resize(col_idx.len() * b * b, 0.0);
            for r in 0..b {
                let i = bi * b + r;
                let cols = a.row_cols(i);
                let vals = a.row_vals(i);
                let row_base = a.row_ptr()[i];
                for (k, &c) in cols.iter().enumerate() {
                    let bc = c / b as u32;
                    let within = (c % b as u32) as usize;
                    // bcols is sorted & deduped: binary search.
                    let pos = bcols.binary_search(&bc).expect("block col must exist");
                    let blk = base_block + pos;
                    let slot = blk * b * b + r * b + within;
                    values[slot] = vals[k];
                    csr_value_map[row_base + k] = slot as u32;
                }
            }
            row_ptr.push(col_idx.len());
        }
        let mut out = Self::from_raw(nbrows, nbcols, b, row_ptr, col_idx, values);
        out.csr_value_map = csr_value_map;
        out
    }

    /// Refill values from a point CSR matrix with the *same pattern* this
    /// BCSR was built from, without re-deriving the symbolic structure.
    /// This is the per-Newton-step path: the Jacobian pattern is fixed, only
    /// values change.
    ///
    /// # Panics
    /// Panics if a point entry falls outside the stored block pattern.
    pub fn refill_from_csr(&mut self, a: &CsrMatrix) {
        assert_eq!(a.nrows(), self.nrows(), "refill dimension mismatch");
        assert_eq!(a.ncols(), self.ncols(), "refill dimension mismatch");
        assert_eq!(
            a.nnz(),
            self.csr_value_map.len(),
            "refill requires the pattern this BCSR was built from"
        );
        self.values.iter_mut().for_each(|v| *v = 0.0);
        for (k, &slot) in self.csr_value_map.iter().enumerate() {
            self.values[slot as usize] = a.values()[k];
        }
    }

    /// Expand back to point CSR (explicit zeros inside blocks are kept, so
    /// the pattern is the blocked pattern).
    pub fn to_csr(&self) -> CsrMatrix {
        let b = self.b;
        let mut row_ptr = Vec::with_capacity(self.nbrows * b + 1);
        let mut col_idx = Vec::with_capacity(self.nnz_blocks() * b * b);
        let mut values = Vec::with_capacity(self.nnz_blocks() * b * b);
        row_ptr.push(0usize);
        for bi in 0..self.nbrows {
            for r in 0..b {
                for k in self.row_ptr[bi]..self.row_ptr[bi + 1] {
                    let bc = self.col_idx[k] as usize;
                    for c in 0..b {
                        col_idx.push((bc * b + c) as u32);
                        values.push(self.values[k * b * b + r * b + c]);
                    }
                }
                row_ptr.push(col_idx.len());
            }
        }
        CsrMatrix::from_raw(self.nbrows * b, self.nbcols * b, row_ptr, col_idx, values)
    }

    /// Block size.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Nonzero count of the point-CSR matrix this was built from via
    /// [`BcsrMatrix::from_csr`] (0 for matrices built from raw arrays).
    /// [`BcsrMatrix::refill_from_csr`] requires a source with exactly this
    /// many nonzeros; callers reusing a BCSR as a structure template should
    /// check it before refilling.
    pub fn csr_nnz(&self) -> usize {
        self.csr_value_map.len()
    }

    /// Number of block rows.
    pub fn nbrows(&self) -> usize {
        self.nbrows
    }

    /// Number of block columns.
    pub fn nbcols(&self) -> usize {
        self.nbcols
    }

    /// Number of point rows (`nbrows * b`).
    pub fn nrows(&self) -> usize {
        self.nbrows * self.b
    }

    /// Number of point columns.
    pub fn ncols(&self) -> usize {
        self.nbcols * self.b
    }

    /// Number of stored blocks.
    pub fn nnz_blocks(&self) -> usize {
        self.col_idx.len()
    }

    /// Block row pointer array.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Block column index array.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Raw block values (`nnz_blocks * b * b`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable raw block values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The `k`-th stored block as a `b*b` row-major slice.
    pub fn block(&self, k: usize) -> &[f64] {
        let bb = self.b * self.b;
        &self.values[k * bb..(k + 1) * bb]
    }

    /// Block-column indices of block row `bi`.
    pub fn row_bcols(&self, bi: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[bi]..self.row_ptr[bi + 1]]
    }

    /// Block sparse matrix-vector product `y <- A x`.
    ///
    /// Each `b`-entry slice of `x` is loaded once per adjacent block and
    /// reused across the block's `b` rows — the register-level reuse that
    /// point CSR cannot express.  Dispatches to the micro-kernel tier
    /// selected at assembly time ([`BcsrMatrix::kernel`]): unrolled lane
    /// kernels for the block sizes the application uses (4: incompressible,
    /// 5: compressible), optionally streamed over repeated-structure
    /// batches.  Every tier returns bitwise-identical results.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols(), "spmv x length mismatch");
        assert_eq!(y.len(), self.nrows(), "spmv y length mismatch");
        self.spmv_rows(x, 0..self.nbrows, y);
    }

    /// Block-row-partitioned parallel [`spmv`](Self::spmv): each thread
    /// computes its contiguous chunk of block rows into the matching
    /// disjoint `b`-aligned slice of `y`.  Block rows are independent, so
    /// the result is bitwise identical to the sequential kernel for any
    /// thread count.
    pub fn spmv_par(&self, x: &[f64], y: &mut [f64], ctx: &ParCtx) {
        assert_eq!(x.len(), self.ncols(), "spmv x length mismatch");
        assert_eq!(y.len(), self.nrows(), "spmv y length mismatch");
        if ctx.nthreads() == 1 {
            return self.spmv(x, y);
        }
        ctx.parallel_for_slices("spmv_bcsr", y, self.b, |_, brows, ysub| {
            self.spmv_rows(x, brows, ysub)
        });
    }

    /// Analytic bytes moved by one [`spmv`](Self::spmv) call under perfect
    /// source reuse — the blocked Eq. 1 traffic floor with `miss_factor =
    /// 1`: streamed block values (8 B per block entry), one 4-byte block
    /// column index per block, the block-row pointer (8 B/block row), plus
    /// one read of the source and one write of the destination vector.
    /// Deliberately independent of the kernel tier (the batched tier reads
    /// shared templates instead of per-block indices), so `<span>:gbps`
    /// numbers computed from this floor stay comparable across
    /// `FUN3D_BLOCK_KERNEL` modes — kernel wins show up as time, and hence
    /// effective-bandwidth, improvements.
    pub fn spmv_traffic_bytes(&self) -> f64 {
        let b = self.b as f64;
        let nblocks = (self.values.len() as f64) / (b * b);
        let nbrows = self.nbrows as f64;
        let n = nbrows * b;
        8.0 * nblocks * b * b + 4.0 * nblocks + 8.0 * (nbrows + 1.0) + 8.0 * n + 8.0 * n
    }

    /// Compute block rows `brows` into `y`, which holds exactly those rows
    /// (`y[0]` is point row `brows.start * b`).
    ///
    /// Dispatch happens here, once per (sequential call | thread chunk),
    /// never per row: the tier was fixed at assembly time, and the batched
    /// tier falls back to the fixed kernel shape for block sizes without an
    /// unrolled path.  All tiers are bitwise identical — they only reorder
    /// updates to *independent* accumulators.
    fn spmv_rows(&self, x: &[f64], brows: Range<usize>, y: &mut [f64]) {
        if self.kernel == BlockKernel::Generic {
            return self.spmv_rows_generic(x, brows, y);
        }
        let batched = self.kernel == BlockKernel::Batched;
        match self.b {
            4 if batched => self.spmv_rows_batched::<4>(x, brows, y),
            5 if batched => self.spmv_rows_batched::<5>(x, brows, y),
            3 if batched => self.spmv_rows_batched::<3>(x, brows, y),
            2 if batched => self.spmv_rows_batched::<2>(x, brows, y),
            1 if batched => self.spmv_rows_batched::<1>(x, brows, y),
            4 => self.spmv_rows_fixed::<4>(x, brows, y),
            5 => self.spmv_rows_fixed::<5>(x, brows, y),
            3 => self.spmv_rows_fixed::<3>(x, brows, y),
            2 => self.spmv_rows_fixed::<2>(x, brows, y),
            1 => self.spmv_rows_fixed::<1>(x, brows, y),
            _ => self.spmv_rows_generic(x, brows, y),
        }
    }

    /// Const-unrolled lane kernel: the whole `B x B` block and both `B`
    /// vectors live in registers, the loop nest fully unrolls, and the `B`
    /// accumulators update in lane-parallel (column-broadcast) order.
    fn spmv_rows_fixed<const B: usize>(&self, x: &[f64], brows: Range<usize>, y: &mut [f64]) {
        debug_assert_eq!(self.b, B);
        let base = brows.start;
        for bi in brows {
            let mut acc = [0.0f64; B];
            for k in self.row_ptr[bi]..self.row_ptr[bi + 1] {
                let bc = self.col_idx[k] as usize;
                let xs = &x[bc * B..bc * B + B];
                let blk = &self.values[k * B * B..(k + 1) * B * B];
                block_madd::<B>(blk, xs, &mut acc);
            }
            let o = (bi - base) * B;
            y[o..o + B].copy_from_slice(&acc);
        }
    }

    /// Batched tier: stream the fixed kernel over maximal runs of rows with
    /// identical block structure.  Within a run every row has the same
    /// length `L`, so block offsets advance arithmetically (`k += L`) and
    /// column indices come from the run's shared delta template — the per
    /// row `row_ptr` loads and per block `col_idx` loads of the fixed tier
    /// disappear into a `L`-entry template that stays cache-hot for the
    /// whole run.
    fn spmv_rows_batched<const B: usize>(&self, x: &[f64], brows: Range<usize>, y: &mut [f64]) {
        debug_assert_eq!(self.b, B);
        let st = self
            .structure
            .as_ref()
            .expect("batched kernel requires the structure analysis");
        let base = brows.start;
        let batches = st.batches();
        // Batches tile the rows in order; start at the one covering
        // brows.start (a thread chunk may begin mid-batch).
        let mut ib = batches.partition_point(|t| (t.start + t.len) as usize <= brows.start);
        while ib < batches.len() {
            let bt = batches[ib];
            let bstart = bt.start as usize;
            if bstart >= brows.end {
                break;
            }
            let lo = bstart.max(brows.start);
            let hi = (bstart + bt.len as usize).min(brows.end);
            let deltas = st.template_deltas(bt.template);
            let len = deltas.len();
            let mut k = self.row_ptr[lo];
            for bi in lo..hi {
                let mut acc = [0.0f64; B];
                for (pos, &d) in deltas.iter().enumerate() {
                    let bc = (bi as i64 + d) as usize;
                    let xs = &x[bc * B..bc * B + B];
                    let blk = &self.values[(k + pos) * B * B..(k + pos + 1) * B * B];
                    block_madd::<B>(blk, xs, &mut acc);
                }
                k += len;
                debug_assert_eq!(k, self.row_ptr[bi + 1]);
                let o = (bi - base) * B;
                y[o..o + B].copy_from_slice(&acc);
            }
            ib += 1;
        }
    }

    fn spmv_rows_generic(&self, x: &[f64], brows: Range<usize>, y: &mut [f64]) {
        let b = self.b;
        let bb = b * b;
        let base = brows.start;
        for bi in brows {
            let ys = &mut y[(bi - base) * b..(bi - base + 1) * b];
            ys.fill(0.0);
            for k in self.row_ptr[bi]..self.row_ptr[bi + 1] {
                let bc = self.col_idx[k] as usize;
                let xs = &x[bc * b..(bc + 1) * b];
                let blk = &self.values[k * bb..(k + 1) * bb];
                for r in 0..b {
                    let mut s = ys[r];
                    for c in 0..b {
                        s += blk[r * b + c] * xs[c];
                    }
                    ys[r] = s;
                }
            }
        }
    }

    /// Block bandwidth in block units.
    pub fn block_bandwidth(&self) -> usize {
        let mut beta = 0usize;
        for bi in 0..self.nbrows {
            for &c in self.row_bcols(bi) {
                beta = beta.max(bi.abs_diff(c as usize));
            }
        }
        beta
    }
}

/// `acc += blk * xs` for one row-major `B x B` block, in column-broadcast
/// (lane) order: each source entry `xs[c]` is broadcast against block
/// column `c`, updating all `B` accumulators at once.
///
/// Bitwise-identity invariant: for a fixed accumulator `acc[r]`, the
/// additions arrive in ascending-`c` order — exactly the order of the
/// generic row-dot loop — so reordering across *rows* changes nothing.
/// Rust never contracts `f64` mul+add into a fused multiply-add, so the
/// rounding sequence is identical too.
#[inline(always)]
fn block_madd<const B: usize>(blk: &[f64], xs: &[f64], acc: &mut [f64; B]) {
    debug_assert!(blk.len() >= B * B);
    debug_assert!(xs.len() >= B);
    for c in 0..B {
        let xc = xs[c];
        for r in 0..B {
            acc[r] += blk[r * B + c] * xc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    /// Random block-structured matrix: nb block rows, each with diagonal plus
    /// a few off-diagonal blocks, fully dense inside the blocks.
    fn random_block_matrix(nb: usize, b: usize, seed: u64) -> CsrMatrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = TripletMatrix::new(nb * b, nb * b);
        for i in 0..nb {
            let mut js = vec![i];
            for _ in 0..3 {
                js.push(rng.gen_range(0..nb));
            }
            js.sort_unstable();
            js.dedup();
            for j in js {
                let blk: Vec<f64> = (0..b * b).map(|_| rng.gen_range(-1.0..1.0)).collect();
                t.push_block(i, j, b, &blk);
            }
        }
        t.to_csr()
    }

    #[test]
    fn from_csr_roundtrip_pattern() {
        for b in [1usize, 2, 4, 5] {
            let a = random_block_matrix(7, b, 42 + b as u64);
            let ab = BcsrMatrix::from_csr(&a, b);
            let back = ab.to_csr();
            // Every original entry must be preserved.
            for i in 0..a.nrows() {
                for (k, &c) in a.row_cols(i).iter().enumerate() {
                    assert_eq!(back.get(i, c as usize), a.row_vals(i)[k], "b={b} ({i},{c})");
                }
            }
        }
    }

    #[test]
    fn spmv_matches_csr() {
        let mut rng = SmallRng::seed_from_u64(7);
        for b in [1usize, 2, 3, 4, 5, 6] {
            let a = random_block_matrix(9, b, 100 + b as u64);
            let ab = BcsrMatrix::from_csr(&a, b);
            let x: Vec<f64> = (0..a.ncols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut y1 = vec![0.0; a.nrows()];
            let mut y2 = vec![0.0; a.nrows()];
            a.spmv(&x, &mut y1);
            ab.spmv(&x, &mut y2);
            for (u, v) in y1.iter().zip(&y2) {
                assert!((u - v).abs() < 1e-12, "b={b}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn blocking_reduces_index_storage() {
        let b = 4;
        let a = random_block_matrix(20, b, 3);
        let ab = BcsrMatrix::from_csr(&a, b);
        // One index per block instead of one per point entry.
        assert!(ab.nnz_blocks() * b * b >= a.nnz());
        assert!(ab.nnz_blocks() <= a.nnz() / (b * b) + a.nrows());
        assert!(
            ab.nnz_blocks() < a.nnz() / 4,
            "index array should shrink markedly"
        );
    }

    #[test]
    fn block_bandwidth_scales() {
        let b = 2;
        let a = random_block_matrix(15, b, 9);
        let ab = BcsrMatrix::from_csr(&a, b);
        // Point bandwidth is at most b * (block bandwidth + 1) - 1.
        assert!(a.bandwidth() < b * (ab.block_bandwidth() + 1));
    }

    #[test]
    fn dims_accessors() {
        let a = random_block_matrix(6, 5, 11);
        let ab = BcsrMatrix::from_csr(&a, 5);
        assert_eq!(ab.nbrows(), 6);
        assert_eq!(ab.nrows(), 30);
        assert_eq!(ab.block_size(), 5);
        assert_eq!(ab.block(0).len(), 25);
    }

    #[test]
    fn refill_matches_rebuild() {
        let b = 4;
        let a1 = random_block_matrix(8, b, 77);
        let mut a2 = a1.clone();
        a2.scale(3.5);
        let mut ab = BcsrMatrix::from_csr(&a1, b);
        ab.refill_from_csr(&a2);
        let fresh = BcsrMatrix::from_csr(&a2, b);
        assert_eq!(ab, fresh);
    }

    #[test]
    #[should_panic(expected = "multiple of block size")]
    fn from_csr_rejects_nonmultiple() {
        let a = CsrMatrix::identity(7);
        BcsrMatrix::from_csr(&a, 2);
    }

    #[test]
    fn kernel_tiers_are_bitwise_identical() {
        use crate::blockspec::BlockKernel;
        let mut rng = SmallRng::seed_from_u64(23);
        for b in [1usize, 2, 3, 4, 5, 6] {
            let a = random_block_matrix(11, b, 500 + b as u64);
            let base = BcsrMatrix::from_csr(&a, b).with_kernel(BlockKernel::Generic);
            let x: Vec<f64> = (0..a.ncols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut y0 = vec![0.0; a.nrows()];
            base.spmv(&x, &mut y0);
            for kernel in [BlockKernel::Fixed, BlockKernel::Batched] {
                let ab = base.clone().with_kernel(kernel);
                let mut y = vec![0.0; a.nrows()];
                ab.spmv(&x, &mut y);
                assert_eq!(y0, y, "b={b} kernel={kernel}: must be bitwise identical");
                // ... including through the parallel chunking.
                for nthreads in [2usize, 5] {
                    let mut yp = vec![0.0; a.nrows()];
                    ab.spmv_par(&x, &mut yp, &ParCtx::new(nthreads));
                    assert_eq!(y0, yp, "b={b} kernel={kernel} nthreads={nthreads}");
                }
            }
        }
    }

    #[test]
    fn batched_tier_reports_structure_stats() {
        let a = random_block_matrix(30, 4, 9);
        let ab = BcsrMatrix::from_csr(&a, 4).with_kernel(crate::blockspec::BlockKernel::Batched);
        let stats = ab.structure_stats().expect("batched tier has structure");
        assert_eq!(stats.nrows, 30);
        assert!(stats.ntemplates >= 1 && stats.ntemplates <= 30);
        assert!(stats.nbatches >= 1);
        let fixed = ab.with_kernel(crate::blockspec::BlockKernel::Fixed);
        assert!(fixed.structure_stats().is_none());
    }
}
