//! Point-block ILU(0) on BCSR storage — the PETSc `PCILU` on `BAIJ`
//! matrices that PETSc-FUN3D actually runs.
//!
//! Once the Jacobian is structurally blocked (Section 2.1.2), the natural
//! incomplete factorization treats each `b x b` block as a scalar: the
//! elimination works on the *block* sparsity pattern with dense block
//! arithmetic, and the diagonal blocks are inverted outright so the
//! triangular solves contain no division (and touch one `u32` index per
//! block instead of per entry — the integer-load reduction Table 1's
//! "Structural Blocking" column buys in the solve phase).

use crate::bcsr::BcsrMatrix;
use crate::blockspec::{analyze, BlockKernel, BlockStructure, BlockStructureStats};
use crate::dense::{
    block_gemm, block_gemm_sub, block_gemv_b, block_gemv_sub, block_gemv_sub_b, lu_factor,
    lu_invert,
};
use crate::ilu::{level_schedule, IluError, LevelSchedule};
use crate::par::{DisjointSliceMut, ParCtx};

/// A block ILU(0) factorization of a BCSR matrix.
#[derive(Debug, Clone)]
pub struct BlockIluFactors {
    /// Block size.
    b: usize,
    /// Number of block rows.
    nb: usize,
    /// Strictly-lower block pattern.
    l_ptr: Vec<usize>,
    l_idx: Vec<u32>,
    /// Strictly-upper block pattern.
    u_ptr: Vec<usize>,
    u_idx: Vec<u32>,
    /// L blocks (unit block-diagonal implicit), `b*b` each.
    l_vals: Vec<f64>,
    /// U strictly-upper blocks, `b*b` each.
    u_vals: Vec<f64>,
    /// Inverted diagonal blocks, `b*b` each.
    inv_diag: Vec<f64>,
    /// Level sets over block rows for the parallel sweeps (pattern-only,
    /// computed once at factor time).
    l_levels: LevelSchedule,
    u_levels: LevelSchedule,
    /// Micro-kernel tier the sweeps dispatch to (inherited from the matrix
    /// at factor time, i.e. ultimately from `FUN3D_BLOCK_KERNEL`).
    kernel: BlockKernel,
    /// Repeated-structure analysis of the L / U patterns, present iff
    /// `kernel` is `Batched`.  The sequential sweeps stream over the
    /// batches; the level-scheduled parallel sweeps use the fixed kernels
    /// (level order destroys row contiguity) but share the telemetry.
    l_structure: Option<BlockStructure>,
    u_structure: Option<BlockStructure>,
}

impl BlockIluFactors {
    /// Factor a square BCSR matrix with zero block fill (the pattern of `A`),
    /// inheriting the matrix's micro-kernel tier for the sweeps.
    ///
    /// Returns [`IluError::ZeroPivot`] (with the *block row* index) when a
    /// diagonal block is singular.
    pub fn factor(a: &BcsrMatrix) -> Result<Self, IluError> {
        Self::factor_with_kernel(a, a.kernel())
    }

    /// [`Self::factor`] with an explicit micro-kernel tier for the sweeps.
    pub fn factor_with_kernel(a: &BcsrMatrix, kernel: BlockKernel) -> Result<Self, IluError> {
        assert_eq!(a.nbrows(), a.nbcols(), "block ILU needs a square matrix");
        let b = a.block_size();
        let bb = b * b;
        let nb = a.nbrows();

        // Split the pattern into strictly-lower / diagonal / strictly-upper.
        let mut l_ptr = Vec::with_capacity(nb + 1);
        let mut u_ptr = Vec::with_capacity(nb + 1);
        let mut l_idx: Vec<u32> = Vec::new();
        let mut u_idx: Vec<u32> = Vec::new();
        let mut l_vals: Vec<f64> = Vec::new();
        let mut u_vals: Vec<f64> = Vec::new();
        let mut diag: Vec<f64> = vec![0.0; nb * bb];
        let mut has_diag = vec![false; nb];
        l_ptr.push(0);
        u_ptr.push(0);
        for i in 0..nb {
            for (k, &c) in a.row_bcols(i).iter().enumerate() {
                let blk = a.block(a.row_ptr()[i] + k);
                match (c as usize).cmp(&i) {
                    std::cmp::Ordering::Less => {
                        l_idx.push(c);
                        l_vals.extend_from_slice(blk);
                    }
                    std::cmp::Ordering::Equal => {
                        diag[i * bb..(i + 1) * bb].copy_from_slice(blk);
                        has_diag[i] = true;
                    }
                    std::cmp::Ordering::Greater => {
                        u_idx.push(c);
                        u_vals.extend_from_slice(blk);
                    }
                }
            }
            if !has_diag[i] {
                return Err(IluError::ZeroPivot(i));
            }
            l_ptr.push(l_idx.len());
            u_ptr.push(u_idx.len());
        }

        // Block IKJ elimination restricted to the existing pattern.
        let mut inv_diag = vec![0.0f64; nb * bb];
        let mut tmp = vec![0.0f64; bb];
        let mut lu = vec![0.0f64; bb];
        let mut piv = vec![0usize; b];
        for i in 0..nb {
            // For each L block (ascending k): L_ik <- A_ik * inv(U_kk), then
            // update the remaining blocks of row i against U row k.
            for li in l_ptr[i]..l_ptr[i + 1] {
                let k = l_idx[li] as usize;
                // tmp = L_ik * inv_diag[k]
                {
                    let lik = &l_vals[li * bb..(li + 1) * bb];
                    let invk = &inv_diag[k * bb..(k + 1) * bb];
                    block_gemm(lik, invk, &mut tmp, b);
                }
                l_vals[li * bb..(li + 1) * bb].copy_from_slice(&tmp);
                // Row i's remaining pattern vs U row k: for j in U(k),
                // update L_ij (j < i), D_ii (j == i), or U_ij (j > i).
                // The source block U_kj is borrowed in place — the Less /
                // Equal arms write disjoint arrays, and the Greater arm
                // splits `u_vals` at row i's first block (U row k, with
                // k < i, lies strictly before it) — so the inner loop
                // allocates nothing.
                for uk in u_ptr[k]..u_ptr[k + 1] {
                    let j = u_idx[uk] as usize;
                    match j.cmp(&i) {
                        std::cmp::Ordering::Less => {
                            // Find L_ij among the remaining L blocks of row i.
                            if let Some(pos) = find_block(&l_idx[l_ptr[i]..l_ptr[i + 1]], j as u32)
                            {
                                let slot = l_ptr[i] + pos;
                                let ukj = &u_vals[uk * bb..(uk + 1) * bb];
                                block_gemm_sub(
                                    &tmp,
                                    ukj,
                                    &mut l_vals[slot * bb..(slot + 1) * bb],
                                    b,
                                );
                            }
                        }
                        std::cmp::Ordering::Equal => {
                            let ukj = &u_vals[uk * bb..(uk + 1) * bb];
                            block_gemm_sub(&tmp, ukj, &mut diag[i * bb..(i + 1) * bb], b);
                        }
                        std::cmp::Ordering::Greater => {
                            if let Some(pos) = find_block(&u_idx[u_ptr[i]..u_ptr[i + 1]], j as u32)
                            {
                                let slot = u_ptr[i] + pos;
                                let (done, rest) = u_vals.split_at_mut(u_ptr[i] * bb);
                                let ukj = &done[uk * bb..(uk + 1) * bb];
                                let off = (slot - u_ptr[i]) * bb;
                                block_gemm_sub(&tmp, ukj, &mut rest[off..off + bb], b);
                            }
                        }
                    }
                }
            }
            // Invert the (updated) diagonal block.
            lu.copy_from_slice(&diag[i * bb..(i + 1) * bb]);
            if lu_factor(&mut lu, &mut piv, b).is_err() {
                return Err(IluError::ZeroPivot(i));
            }
            lu_invert(&lu, &piv, &mut inv_diag[i * bb..(i + 1) * bb], b);
        }

        let l_levels = level_schedule(nb, &l_ptr, &l_idx, false);
        let u_levels = level_schedule(nb, &u_ptr, &u_idx, true);
        let batched = kernel == BlockKernel::Batched;
        let l_structure = batched.then(|| analyze(&l_ptr, &l_idx));
        let u_structure = batched.then(|| analyze(&u_ptr, &u_idx));
        Ok(Self {
            b,
            nb,
            l_ptr,
            l_idx,
            u_ptr,
            u_idx,
            l_vals,
            u_vals,
            inv_diag,
            l_levels,
            u_levels,
            kernel,
            l_structure,
            u_structure,
        })
    }

    /// The micro-kernel tier the triangular sweeps dispatch to.
    pub fn kernel(&self) -> BlockKernel {
        self.kernel
    }

    /// Repeated-structure statistics of the (lower, upper) sweep patterns;
    /// `None` unless the `Batched` tier is selected.
    pub fn structure_stats(&self) -> Option<(BlockStructureStats, BlockStructureStats)> {
        match (&self.l_structure, &self.u_structure) {
            (Some(l), Some(u)) => Some((l.stats(), u.stats())),
            _ => None,
        }
    }

    /// Block size.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Matrix dimension in points.
    pub fn n(&self) -> usize {
        self.nb * self.b
    }

    /// Stored blocks (L + U + diagonal).
    pub fn nnz_blocks(&self) -> usize {
        self.l_idx.len() + self.u_idx.len() + self.nb
    }

    /// Analytic bytes moved by one block triangular solve: every stored
    /// block streams once (8 B per entry), one 4-byte block index per
    /// off-diagonal block, the two block-row pointers stream once, and `x`
    /// is read and written through both sweeps.
    pub fn solve_traffic_bytes(&self) -> f64 {
        let bb = (self.b * self.b) as f64;
        let nb = self.nb as f64;
        let n = self.n() as f64;
        let offdiag = (self.l_idx.len() + self.u_idx.len()) as f64;
        8.0 * self.nnz_blocks() as f64 * bb + 4.0 * offdiag + 2.0 * 8.0 * (nb + 1.0) + 4.0 * 8.0 * n
    }

    /// Apply the preconditioner: `x <- U^{-1} L^{-1} b` with block solves.
    pub fn solve(&self, rhs: &[f64], x: &mut [f64]) {
        assert_eq!(rhs.len(), self.n());
        assert_eq!(x.len(), self.n());
        x.copy_from_slice(rhs);
        self.solve_in_place(x);
    }

    /// In-place block triangular solves, dispatched once per call to the
    /// micro-kernel tier fixed at factor time.  All tiers are bitwise
    /// identical (see `tests/kernel_equivalence.rs`).
    pub fn solve_in_place(&self, x: &mut [f64]) {
        if self.kernel == BlockKernel::Generic {
            return self.solve_in_place_generic(x);
        }
        match self.b {
            4 => self.solve_in_place_b::<4>(x),
            5 => self.solve_in_place_b::<5>(x),
            3 => self.solve_in_place_b::<3>(x),
            2 => self.solve_in_place_b::<2>(x),
            1 => self.solve_in_place_b::<1>(x),
            _ => self.solve_in_place_generic(x),
        }
    }

    /// Runtime-`b` sweeps — the scalar baseline tier.  The per-call scratch
    /// vectors are allocated once; the loops themselves allocate nothing
    /// (`x` sub-blocks are borrowed in place, disjoint from the local
    /// accumulators).
    fn solve_in_place_generic(&self, x: &mut [f64]) {
        let b = self.b;
        let bb = b * b;
        let mut xi = vec![0.0f64; b];
        // Forward: (I + L) y = rhs.
        for i in 0..self.nb {
            xi.copy_from_slice(&x[i * b..(i + 1) * b]);
            for li in self.l_ptr[i]..self.l_ptr[i + 1] {
                let k = self.l_idx[li] as usize;
                let lik = &self.l_vals[li * bb..(li + 1) * bb];
                block_gemv_sub(lik, &x[k * b..(k + 1) * b], &mut xi, b);
            }
            x[i * b..(i + 1) * b].copy_from_slice(&xi);
        }
        // Backward: (D + U) x = y  =>  x_i = invD_i (y_i - sum U_ij x_j).
        let mut acc = vec![0.0f64; b];
        let mut out = vec![0.0f64; b];
        for i in (0..self.nb).rev() {
            acc.copy_from_slice(&x[i * b..(i + 1) * b]);
            for ui in self.u_ptr[i]..self.u_ptr[i + 1] {
                let j = self.u_idx[ui] as usize;
                let uij = &self.u_vals[ui * bb..(ui + 1) * bb];
                block_gemv_sub(uij, &x[j * b..(j + 1) * b], &mut acc, b);
            }
            let invd = &self.inv_diag[i * bb..(i + 1) * bb];
            crate::dense::block_gemv(invd, &acc, &mut out, b);
            x[i * b..(i + 1) * b].copy_from_slice(&out);
        }
    }

    /// Const-unrolled sweeps for the fixed and batched tiers: stack-array
    /// accumulators, lane gemv kernels, and — when the structure analysis
    /// is present — batch streaming with template column deltas and
    /// arithmetic block offsets in place of per-row `l_ptr`/`l_idx` loads.
    fn solve_in_place_b<const B: usize>(&self, x: &mut [f64]) {
        let bb = B * B;
        // Forward: (I + L) y = rhs.
        if let Some(st) = &self.l_structure {
            for bt in st.batches() {
                let deltas = st.template_deltas(bt.template);
                let len = deltas.len();
                let mut li = self.l_ptr[bt.start as usize];
                for i in bt.start as usize..bt.start as usize + bt.len as usize {
                    let mut xi: [f64; B] = x[i * B..(i + 1) * B].try_into().unwrap();
                    for (pos, &d) in deltas.iter().enumerate() {
                        let k = (i as i64 + d) as usize;
                        let lik = &self.l_vals[(li + pos) * bb..(li + pos + 1) * bb];
                        block_gemv_sub_b::<B>(lik, &x[k * B..k * B + B], &mut xi);
                    }
                    li += len;
                    x[i * B..(i + 1) * B].copy_from_slice(&xi);
                }
            }
        } else {
            for i in 0..self.nb {
                let mut xi: [f64; B] = x[i * B..(i + 1) * B].try_into().unwrap();
                for li in self.l_ptr[i]..self.l_ptr[i + 1] {
                    let k = self.l_idx[li] as usize;
                    let lik = &self.l_vals[li * bb..(li + 1) * bb];
                    block_gemv_sub_b::<B>(lik, &x[k * B..k * B + B], &mut xi);
                }
                x[i * B..(i + 1) * B].copy_from_slice(&xi);
            }
        }
        // Backward: (D + U) x = y  =>  x_i = invD_i (y_i - sum U_ij x_j).
        if let Some(st) = &self.u_structure {
            for bt in st.batches().iter().rev() {
                let deltas = st.template_deltas(bt.template);
                let start = bt.start as usize;
                let len = deltas.len();
                let ui0 = self.u_ptr[start];
                for i in (start..start + bt.len as usize).rev() {
                    let ui = ui0 + (i - start) * len;
                    let mut acc: [f64; B] = x[i * B..(i + 1) * B].try_into().unwrap();
                    for (pos, &d) in deltas.iter().enumerate() {
                        let j = (i as i64 + d) as usize;
                        let uij = &self.u_vals[(ui + pos) * bb..(ui + pos + 1) * bb];
                        block_gemv_sub_b::<B>(uij, &x[j * B..j * B + B], &mut acc);
                    }
                    let invd = &self.inv_diag[i * bb..(i + 1) * bb];
                    let out = block_gemv_b::<B>(invd, &acc);
                    x[i * B..(i + 1) * B].copy_from_slice(&out);
                }
            }
        } else {
            for i in (0..self.nb).rev() {
                let mut acc: [f64; B] = x[i * B..(i + 1) * B].try_into().unwrap();
                for ui in self.u_ptr[i]..self.u_ptr[i + 1] {
                    let j = self.u_idx[ui] as usize;
                    let uij = &self.u_vals[ui * bb..(ui + 1) * bb];
                    block_gemv_sub_b::<B>(uij, &x[j * B..j * B + B], &mut acc);
                }
                let invd = &self.inv_diag[i * bb..(i + 1) * bb];
                let out = block_gemv_b::<B>(invd, &acc);
                x[i * B..(i + 1) * B].copy_from_slice(&out);
            }
        }
    }

    /// Number of dependency levels in the (forward, backward) block sweeps.
    pub fn level_counts(&self) -> (usize, usize) {
        (self.l_levels.nlevels(), self.u_levels.nlevels())
    }

    /// Parallel [`solve`](Self::solve) via level-scheduled block sweeps.
    pub fn solve_par(&self, rhs: &[f64], x: &mut [f64], ctx: &ParCtx) {
        assert_eq!(rhs.len(), self.n());
        assert_eq!(x.len(), self.n());
        x.copy_from_slice(rhs);
        self.solve_in_place_par(x, ctx);
    }

    /// Level-scheduled parallel [`solve_in_place`](Self::solve_in_place):
    /// block rows within a level have no mutual dependencies, each writes
    /// only its own `b`-entry slice of `x`, and the per-row arithmetic is
    /// the exact sequential sequence — bitwise identical for any thread
    /// count.
    pub fn solve_in_place_par(&self, x: &mut [f64], ctx: &ParCtx) {
        if ctx.nthreads() == 1 {
            return self.solve_in_place(x);
        }
        if self.kernel == BlockKernel::Generic {
            return self.solve_in_place_par_generic(x, ctx);
        }
        match self.b {
            4 => self.solve_in_place_par_b::<4>(x, ctx),
            5 => self.solve_in_place_par_b::<5>(x, ctx),
            3 => self.solve_in_place_par_b::<3>(x, ctx),
            2 => self.solve_in_place_par_b::<2>(x, ctx),
            1 => self.solve_in_place_par_b::<1>(x, ctx),
            _ => self.solve_in_place_par_generic(x, ctx),
        }
    }

    /// Runtime-`b` level sweeps — the scalar baseline tier.
    fn solve_in_place_par_generic(&self, x: &mut [f64], ctx: &ParCtx) {
        let b = self.b;
        let bb = b * b;
        let view = DisjointSliceMut::new(x);
        // Forward: (I + L) y = rhs.
        for lev in 0..self.l_levels.nlevels() {
            let rows = self.l_levels.level(lev);
            ctx.parallel_for("bilu_lower", rows.len(), |_, r| {
                let mut xi = vec![0.0f64; b];
                for &iu in &rows[r] {
                    let i = iu as usize;
                    // SAFETY: block row i is this level's only writer of
                    // x[i*b..(i+1)*b]; reads come from earlier levels.
                    unsafe {
                        xi.copy_from_slice(view.slice(i * b..(i + 1) * b));
                        for li in self.l_ptr[i]..self.l_ptr[i + 1] {
                            let k = self.l_idx[li] as usize;
                            let lik = &self.l_vals[li * bb..(li + 1) * bb];
                            block_gemv_sub(lik, view.slice(k * b..(k + 1) * b), &mut xi, b);
                        }
                        view.slice_mut(i * b..(i + 1) * b).copy_from_slice(&xi);
                    }
                }
            });
        }
        // Backward: (D + U) x = y.
        for lev in 0..self.u_levels.nlevels() {
            let rows = self.u_levels.level(lev);
            ctx.parallel_for("bilu_upper", rows.len(), |_, r| {
                let mut acc = vec![0.0f64; b];
                let mut out = vec![0.0f64; b];
                for &iu in &rows[r] {
                    let i = iu as usize;
                    // SAFETY: as above, with dependencies pointing upward.
                    unsafe {
                        acc.copy_from_slice(view.slice(i * b..(i + 1) * b));
                        for ui in self.u_ptr[i]..self.u_ptr[i + 1] {
                            let j = self.u_idx[ui] as usize;
                            let uij = &self.u_vals[ui * bb..(ui + 1) * bb];
                            block_gemv_sub(uij, view.slice(j * b..(j + 1) * b), &mut acc, b);
                        }
                        let invd = &self.inv_diag[i * bb..(i + 1) * bb];
                        crate::dense::block_gemv(invd, &acc, &mut out, b);
                        view.slice_mut(i * b..(i + 1) * b).copy_from_slice(&out);
                    }
                }
            });
        }
    }

    /// Const-unrolled level sweeps for the fixed and batched tiers.  The
    /// level schedule fixes which rows run when, and the per-row arithmetic
    /// is the exact sequential sequence, so this stays bitwise identical to
    /// [`Self::solve_in_place`] for any thread count; the only changes are
    /// stack-array accumulators and the lane gemv kernels — the sweep
    /// closures allocate nothing.
    fn solve_in_place_par_b<const B: usize>(&self, x: &mut [f64], ctx: &ParCtx) {
        let bb = B * B;
        let view = DisjointSliceMut::new(x);
        // Forward: (I + L) y = rhs.
        for lev in 0..self.l_levels.nlevels() {
            let rows = self.l_levels.level(lev);
            ctx.parallel_for("bilu_lower", rows.len(), |_, r| {
                for &iu in &rows[r] {
                    let i = iu as usize;
                    // SAFETY: block row i is this level's only writer of
                    // x[i*B..(i+1)*B]; reads come from earlier levels.
                    unsafe {
                        let mut xi: [f64; B] = view.slice(i * B..(i + 1) * B).try_into().unwrap();
                        for li in self.l_ptr[i]..self.l_ptr[i + 1] {
                            let k = self.l_idx[li] as usize;
                            let lik = &self.l_vals[li * bb..(li + 1) * bb];
                            block_gemv_sub_b::<B>(lik, view.slice(k * B..(k + 1) * B), &mut xi);
                        }
                        view.slice_mut(i * B..(i + 1) * B).copy_from_slice(&xi);
                    }
                }
            });
        }
        // Backward: (D + U) x = y.
        for lev in 0..self.u_levels.nlevels() {
            let rows = self.u_levels.level(lev);
            ctx.parallel_for("bilu_upper", rows.len(), |_, r| {
                for &iu in &rows[r] {
                    let i = iu as usize;
                    // SAFETY: as above, with dependencies pointing upward.
                    unsafe {
                        let mut acc: [f64; B] = view.slice(i * B..(i + 1) * B).try_into().unwrap();
                        for ui in self.u_ptr[i]..self.u_ptr[i + 1] {
                            let j = self.u_idx[ui] as usize;
                            let uij = &self.u_vals[ui * bb..(ui + 1) * bb];
                            block_gemv_sub_b::<B>(uij, view.slice(j * B..(j + 1) * B), &mut acc);
                        }
                        let invd = &self.inv_diag[i * bb..(i + 1) * bb];
                        let out = block_gemv_b::<B>(invd, &acc);
                        view.slice_mut(i * B..(i + 1) * B).copy_from_slice(&out);
                    }
                }
            });
        }
    }
}

#[inline]
fn find_block(cols: &[u32], c: u32) -> Option<usize> {
    cols.binary_search(&c).ok()
}

impl PartialEq for BlockIluFactors {
    fn eq(&self, other: &Self) -> bool {
        self.b == other.b && self.nb == other.nb && self.l_idx == other.l_idx
    }
}

impl std::fmt::Display for BlockIluFactors {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BlockIlu(b={}, nb={}, blocks={})",
            self.b,
            self.nb,
            self.nnz_blocks()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;
    use crate::ilu::{IluFactors, IluOptions};
    use crate::triplet::TripletMatrix;
    use crate::vec_ops::norm2;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    /// Block-tridiagonal, diagonally dominant system.
    fn block_tridiag(nb: usize, b: usize, seed: u64) -> CsrMatrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = TripletMatrix::new(nb * b, nb * b);
        for i in 0..nb {
            for j in [i.wrapping_sub(1), i, i + 1] {
                if j >= nb {
                    continue;
                }
                let mut blk: Vec<f64> = (0..b * b).map(|_| rng.gen_range(-0.5..0.5)).collect();
                if i == j {
                    for d in 0..b {
                        blk[d * b + d] += 4.0;
                    }
                }
                t.push_block(i, j, b, &blk);
            }
        }
        t.to_csr()
    }

    fn residual(a: &CsrMatrix, x: &[f64], rhs: &[f64]) -> f64 {
        let mut r = vec![0.0; rhs.len()];
        a.spmv(x, &mut r);
        for (ri, bi) in r.iter_mut().zip(rhs) {
            *ri -= bi;
        }
        norm2(&r)
    }

    #[test]
    fn block_ilu0_on_block_tridiagonal_is_exact() {
        // No block fill exists outside the pattern, so BILU(0) == block LU.
        for b in [2usize, 4, 5] {
            let a = block_tridiag(20, b, 3);
            let ab = BcsrMatrix::from_csr(&a, b);
            let f = BlockIluFactors::factor(&ab).unwrap();
            let n = a.nrows();
            let rhs: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
            let mut x = vec![0.0; n];
            f.solve(&rhs, &mut x);
            assert!(
                residual(&a, &x, &rhs) < 1e-9 * norm2(&rhs),
                "b={b}: block-tridiagonal BILU(0) must solve exactly"
            );
        }
    }

    #[test]
    fn block_and_point_ilu_agree_on_block_diagonal_matrix() {
        // With only diagonal blocks, both factorizations invert exactly.
        let b = 3;
        let nb = 10;
        let mut rng = SmallRng::seed_from_u64(9);
        let mut t = TripletMatrix::new(nb * b, nb * b);
        for i in 0..nb {
            let mut blk: Vec<f64> = (0..b * b).map(|_| rng.gen_range(-1.0..1.0)).collect();
            for d in 0..b {
                blk[d * b + d] += 3.0;
            }
            t.push_block(i, i, b, &blk);
        }
        let a = t.to_csr();
        let ab = BcsrMatrix::from_csr(&a, b);
        let fb = BlockIluFactors::factor(&ab).unwrap();
        let n = a.nrows();
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut x1 = vec![0.0; n];
        fb.solve(&rhs, &mut x1);
        // Point ILU with full fill is exact LU here too.
        let fp = IluFactors::factor(&a, &IluOptions::with_fill(b)).unwrap();
        let mut x2 = vec![0.0; n];
        fp.solve(&rhs, &mut x2);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10, "{u} vs {v}");
        }
    }

    #[test]
    fn block_ilu_is_a_usable_preconditioner_on_general_pattern() {
        // Random block pattern with fill dropped: approximate inverse, so
        // the preconditioned residual should shrink markedly in one pass.
        let b = 4;
        let nb = 40;
        let mut rng = SmallRng::seed_from_u64(17);
        let mut t = TripletMatrix::new(nb * b, nb * b);
        for i in 0..nb {
            let mut js = vec![i];
            for _ in 0..2 {
                js.push(rng.gen_range(0..nb));
            }
            js.sort_unstable();
            js.dedup();
            for j in js {
                let mut blk: Vec<f64> = (0..b * b).map(|_| rng.gen_range(-0.3..0.3)).collect();
                if i == j {
                    for d in 0..b {
                        blk[d * b + d] += 5.0;
                    }
                }
                t.push_block(i, j, b, &blk);
            }
        }
        let a = t.to_csr();
        let ab = BcsrMatrix::from_csr(&a, b);
        let f = BlockIluFactors::factor(&ab).unwrap();
        let n = a.nrows();
        let rhs = vec![1.0; n];
        let mut x = vec![0.0; n];
        f.solve(&rhs, &mut x);
        let r = residual(&a, &x, &rhs);
        assert!(
            r < 0.3 * norm2(&rhs),
            "one application should reduce the residual a lot: {r}"
        );
    }

    #[test]
    fn singular_diagonal_block_reports_row() {
        let b = 2;
        let mut t = TripletMatrix::new(4, 4);
        t.push_block(0, 0, b, &[1.0, 0.0, 0.0, 1.0]);
        t.push_block(1, 1, b, &[1.0, 1.0, 1.0, 1.0]); // singular
        let ab = BcsrMatrix::from_csr(&t.to_csr(), b);
        match BlockIluFactors::factor(&ab) {
            Err(IluError::ZeroPivot(1)) => {}
            other => panic!("expected zero pivot at block row 1, got {other:?}"),
        }
    }

    #[test]
    fn missing_diagonal_block_is_rejected() {
        let b = 2;
        let mut t = TripletMatrix::new(4, 4);
        t.push_block(0, 0, b, &[1.0, 0.0, 0.0, 1.0]);
        t.push_block(1, 0, b, &[1.0, 0.0, 0.0, 1.0]);
        let ab = BcsrMatrix::from_csr(&t.to_csr(), b);
        assert_eq!(BlockIluFactors::factor(&ab), Err(IluError::ZeroPivot(1)));
    }

    #[test]
    fn parallel_block_solve_is_bitwise_sequential() {
        use crate::par::ParCtx;
        for b in [2usize, 4, 5] {
            let a = block_tridiag(25, b, 13);
            let ab = BcsrMatrix::from_csr(&a, b);
            let f = BlockIluFactors::factor(&ab).unwrap();
            let n = a.nrows();
            let rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.41).cos()).collect();
            let mut xs = vec![0.0; n];
            f.solve(&rhs, &mut xs);
            // Block-tridiagonal: the forward levels form a chain.
            assert_eq!(f.level_counts(), (25, 25));
            for nthreads in [1usize, 2, 4, 64] {
                let mut xp = vec![0.0; n];
                f.solve_par(&rhs, &mut xp, &ParCtx::new(nthreads));
                assert_eq!(xs, xp, "b={b} nthreads={nthreads}");
            }
        }
    }

    #[test]
    fn sweep_kernel_tiers_are_bitwise_identical() {
        use crate::blockspec::BlockKernel;
        use crate::par::ParCtx;
        for b in [2usize, 4, 5] {
            let a = block_tridiag(22, b, 31);
            let ab = BcsrMatrix::from_csr(&a, b);
            let n = a.nrows();
            let rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.73).sin()).collect();
            let fg = BlockIluFactors::factor_with_kernel(&ab, BlockKernel::Generic).unwrap();
            let mut x0 = vec![0.0; n];
            fg.solve(&rhs, &mut x0);
            for kernel in [BlockKernel::Fixed, BlockKernel::Batched] {
                let f = BlockIluFactors::factor_with_kernel(&ab, kernel).unwrap();
                assert_eq!(f.kernel(), kernel);
                let mut x = vec![0.0; n];
                f.solve(&rhs, &mut x);
                assert_eq!(x0, x, "b={b} kernel={kernel}");
                for nthreads in [2usize, 4] {
                    let mut xp = vec![0.0; n];
                    f.solve_par(&rhs, &mut xp, &ParCtx::new(nthreads));
                    assert_eq!(x0, xp, "b={b} kernel={kernel} nthreads={nthreads}");
                }
            }
        }
    }

    #[test]
    fn batched_factor_reports_sweep_structure() {
        use crate::blockspec::BlockKernel;
        let a = block_tridiag(22, 4, 31);
        let ab = BcsrMatrix::from_csr(&a, 4);
        let fb = BlockIluFactors::factor_with_kernel(&ab, BlockKernel::Batched).unwrap();
        let (ls, us) = fb.structure_stats().expect("batched tier has structure");
        // Tridiagonal: L rows are (empty, then all "previous row"); high reuse.
        assert_eq!(ls.nrows, 22);
        assert_eq!(us.nrows, 22);
        assert!(ls.hit_rate > 0.9, "{ls:?}");
        assert!(us.hit_rate > 0.9, "{us:?}");
        let ff = BlockIluFactors::factor_with_kernel(&ab, BlockKernel::Fixed).unwrap();
        assert!(ff.structure_stats().is_none());
    }

    #[test]
    fn index_footprint_is_one_per_block() {
        let b = 4;
        let a = block_tridiag(30, b, 5);
        let ab = BcsrMatrix::from_csr(&a, b);
        let fb = BlockIluFactors::factor(&ab).unwrap();
        let fp = IluFactors::factor(&a, &IluOptions::with_fill(0)).unwrap();
        // Point ILU stores one index per scalar entry; block ILU one per
        // block — a 16x index reduction at b = 4.
        assert!(fb.nnz_blocks() * b * b >= fp.nnz());
        assert!(fb.nnz_blocks() * 12 < fp.nnz());
    }
}
