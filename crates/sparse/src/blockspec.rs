//! Micro-kernel selection and repeated-block-structure analysis for the
//! BCSR hot paths.
//!
//! The paper's Tables 2 and 4 show the matvec and triangular-sweep phases
//! are memory-bandwidth-bound; what is left on the table after structural
//! blocking (Section 2.1.2) is *dispatch and index overhead*: a runtime
//! `b`-sized loop nest cannot be unrolled, and every stored block costs a
//! column-index load even when whole runs of rows share one sparsity
//! pattern.  Following Plana-Riu et al. (arXiv 2508.06710), this module
//!
//! 1. names the three micro-kernel tiers ([`BlockKernel`]): `generic`
//!    (runtime-`b` scalar loops), `fixed` (const-unrolled lane kernels for
//!    the block sizes the application uses), and `batched` (fixed kernels
//!    streaming over runs of rows with identical block structure), and
//! 2. provides the structure-analysis pass ([`analyze`]) that hashes each
//!    block row's *relative* column pattern, deduplicates the patterns into
//!    templates, and groups consecutive rows with the same template into
//!    batches the kernels can stream through without per-row index loads.
//!
//! Every tier computes bitwise-identical results: the kernels only reorder
//! *independent* accumulator updates, never the addition sequence feeding a
//! single accumulator.  The equivalence is pinned by proptests in
//! `tests/kernel_equivalence.rs` — the determinism story (seq == par for
//! any thread count) extends to seq == par == fixed == batched.
//!
//! The analysis runs at assembly / factor time and allocates nothing per
//! row: the pattern hash is computed by streaming the column indices, and
//! template storage is pooled (`deltas_pool` + offsets) rather than one
//! `Vec` per template lookup.

use std::collections::HashMap;
use std::fmt;

/// Environment variable selecting the micro-kernel tier (`generic`,
/// `fixed`, or `batched`).  Read at assembly / factor time; defaults to
/// [`BlockKernel::Batched`].
pub const KERNEL_ENV: &str = "FUN3D_BLOCK_KERNEL";

/// Which micro-kernel tier the BCSR kernels dispatch to.
///
/// Selected once when the matrix is assembled (or the factorization is
/// computed), not per call — the hot loops contain no mode branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockKernel {
    /// Runtime-`b` scalar loop nests — the portable fallback, and the
    /// "scalar" baseline the `blockspec` experiment measures against.
    Generic,
    /// Const-generic unrolled lane kernels for `b` in 1..=5 (4:
    /// incompressible, 5: compressible); generic fallback otherwise.
    Fixed,
    /// Fixed kernels streaming over repeated-structure batches: column
    /// indices come from the shared template, block offsets from batch
    /// arithmetic — no per-row `row_ptr`/`col_idx` loads.
    #[default]
    Batched,
}

impl BlockKernel {
    /// Parse a mode name as accepted in [`KERNEL_ENV`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "generic" => Some(Self::Generic),
            "fixed" => Some(Self::Fixed),
            "batched" => Some(Self::Batched),
            _ => None,
        }
    }

    /// Read the kernel mode from [`KERNEL_ENV`] (default: `batched`).
    ///
    /// # Panics
    /// Panics on an unrecognized value — a typo silently falling back to a
    /// slower kernel is exactly what the CI kernel-identity leg exists to
    /// prevent.
    pub fn from_env() -> Self {
        match std::env::var(KERNEL_ENV) {
            Ok(v) => Self::parse(&v).unwrap_or_else(|| {
                panic!("{KERNEL_ENV}={v}: expected one of generic|fixed|batched")
            }),
            Err(_) => Self::default(),
        }
    }

    /// Stable lowercase name (the same spelling [`Self::parse`] accepts).
    pub fn name(self) -> &'static str {
        match self {
            Self::Generic => "generic",
            Self::Fixed => "fixed",
            Self::Batched => "batched",
        }
    }
}

impl fmt::Display for BlockKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A maximal run of consecutive block rows sharing one structure template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batch {
    /// First block row of the run.
    pub start: u32,
    /// Number of consecutive rows in the run.
    pub len: u32,
    /// Template id shared by every row of the run.
    pub template: u32,
}

/// Deduplicated block-structure templates plus the batch partition of the
/// block rows, as produced by [`analyze`].
///
/// A *template* is a row's block-column pattern expressed relative to the
/// row index (`col - row` deltas) — two rows at different positions with
/// the same stencil shape share a template.  Template delta lists live in
/// one pooled array addressed by offsets, so lookups never allocate.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockStructure {
    /// Template id of each block row.
    template_of_row: Vec<u32>,
    /// `template_ptr[t]..template_ptr[t+1]` indexes `deltas_pool`.
    template_ptr: Vec<usize>,
    /// Pooled relative column deltas (`col - row`) of all templates.
    deltas_pool: Vec<i64>,
    /// How many rows use each template.
    template_rows: Vec<u32>,
    /// Maximal same-template runs, covering every row exactly once.
    batches: Vec<Batch>,
}

/// Scalar summary of a [`BlockStructure`] for telemetry counters and the
/// `fun3d-report profile` columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockStructureStats {
    /// Block rows analyzed.
    pub nrows: usize,
    /// Distinct structure templates.
    pub ntemplates: usize,
    /// Maximal same-template runs.
    pub nbatches: usize,
    /// Fraction of rows whose template is shared by at least one other row
    /// — the "template hit rate" of the dedup pass.
    pub hit_rate: f64,
    /// Mean rows per batch (`nrows / nbatches`).
    pub mean_batch_len: f64,
    /// Longest batch.
    pub max_batch_len: usize,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline(always)]
fn fnv1a(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// Hash, deduplicate, and batch the block rows of a `(row_ptr, col_idx)`
/// pattern.  `O(nnz_blocks)` time; allocates only per *unique* template,
/// never per row (the PR 3 `bump_counter` discipline applied to symbolic
/// analysis).
pub fn analyze(row_ptr: &[usize], col_idx: &[u32]) -> BlockStructure {
    let nb = row_ptr.len().saturating_sub(1);
    let mut template_of_row: Vec<u32> = Vec::with_capacity(nb);
    let mut template_ptr: Vec<usize> = vec![0];
    let mut deltas_pool: Vec<i64> = Vec::new();
    let mut template_rows: Vec<u32> = Vec::new();
    // hash -> template ids with that hash.  Hash collisions are resolved by
    // comparing pattern content, so two genuinely different patterns can
    // never be merged.
    let mut lut: HashMap<u64, Vec<u32>> = HashMap::new();
    for bi in 0..nb {
        let cols = &col_idx[row_ptr[bi]..row_ptr[bi + 1]];
        // FNV-1a over (len, deltas...): streamed straight off col_idx, no
        // per-row scratch of any kind.
        let mut h = fnv1a(FNV_OFFSET, cols.len() as u64);
        for &c in cols {
            h = fnv1a(h, (c as i64 - bi as i64) as u64);
        }
        let candidates = lut.entry(h).or_default();
        let found = candidates.iter().copied().find(|&t| {
            let d = &deltas_pool[template_ptr[t as usize]..template_ptr[t as usize + 1]];
            d.len() == cols.len()
                && d.iter()
                    .zip(cols)
                    .all(|(&dv, &c)| dv == c as i64 - bi as i64)
        });
        let id = match found {
            Some(t) => t,
            None => {
                let t = template_rows.len() as u32;
                deltas_pool.extend(cols.iter().map(|&c| c as i64 - bi as i64));
                template_ptr.push(deltas_pool.len());
                template_rows.push(0);
                candidates.push(t);
                t
            }
        };
        template_rows[id as usize] += 1;
        template_of_row.push(id);
    }
    // Partition the rows into maximal same-template runs.
    let mut batches: Vec<Batch> = Vec::new();
    let mut bi = 0usize;
    while bi < nb {
        let t = template_of_row[bi];
        let mut end = bi + 1;
        while end < nb && template_of_row[end] == t {
            end += 1;
        }
        batches.push(Batch {
            start: bi as u32,
            len: (end - bi) as u32,
            template: t,
        });
        bi = end;
    }
    BlockStructure {
        template_of_row,
        template_ptr,
        deltas_pool,
        template_rows,
        batches,
    }
}

impl BlockStructure {
    /// Number of distinct templates.
    pub fn ntemplates(&self) -> usize {
        self.template_rows.len()
    }

    /// Template id assigned to each block row.
    pub fn template_of_row(&self) -> &[u32] {
        &self.template_of_row
    }

    /// Relative column deltas (`col - row`) of template `t`.
    pub fn template_deltas(&self, t: u32) -> &[i64] {
        &self.deltas_pool[self.template_ptr[t as usize]..self.template_ptr[t as usize + 1]]
    }

    /// The batch partition (covers every block row exactly once, in order).
    pub fn batches(&self) -> &[Batch] {
        &self.batches
    }

    /// Scalar summary for telemetry.
    pub fn stats(&self) -> BlockStructureStats {
        let nrows = self.template_of_row.len();
        let shared: usize = self
            .template_of_row
            .iter()
            .filter(|&&t| self.template_rows[t as usize] >= 2)
            .count();
        BlockStructureStats {
            nrows,
            ntemplates: self.ntemplates(),
            nbatches: self.batches.len(),
            hit_rate: if nrows == 0 {
                0.0
            } else {
                shared as f64 / nrows as f64
            },
            mean_batch_len: if self.batches.is_empty() {
                0.0
            } else {
                nrows as f64 / self.batches.len() as f64
            },
            max_batch_len: self
                .batches
                .iter()
                .map(|t| t.len as usize)
                .max()
                .unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for k in [
            BlockKernel::Generic,
            BlockKernel::Fixed,
            BlockKernel::Batched,
        ] {
            assert_eq!(BlockKernel::parse(k.name()), Some(k));
            assert_eq!(format!("{k}"), k.name());
        }
        assert_eq!(BlockKernel::parse("simd"), None);
    }

    #[test]
    fn tridiagonal_pattern_dedups_to_three_templates() {
        // Rows 1..nb-1 all share the (-1, 0, +1) stencil; the two boundary
        // rows are unique.  One interior batch spans the whole middle.
        let nb = 10usize;
        let mut row_ptr = vec![0usize];
        let mut col_idx: Vec<u32> = Vec::new();
        for i in 0..nb {
            for j in [i.wrapping_sub(1), i, i + 1] {
                if j < nb {
                    col_idx.push(j as u32);
                }
            }
            row_ptr.push(col_idx.len());
        }
        let st = analyze(&row_ptr, &col_idx);
        assert_eq!(st.ntemplates(), 3);
        assert_eq!(st.batches().len(), 3);
        let stats = st.stats();
        assert_eq!(stats.max_batch_len, nb - 2);
        assert!((stats.hit_rate - (nb - 2) as f64 / nb as f64).abs() < 1e-15);
    }

    #[test]
    fn shifted_identical_patterns_share_a_template() {
        // Rows 0 and 2 have the same *relative* pattern (self + next) at
        // different positions; row 1 and 3 differ.
        let row_ptr = vec![0usize, 2, 3, 5, 6];
        let col_idx = vec![0u32, 1, 1, 2, 3, 0];
        let st = analyze(&row_ptr, &col_idx);
        assert_eq!(st.template_of_row()[0], st.template_of_row()[2]);
        assert_ne!(st.template_of_row()[0], st.template_of_row()[1]);
        assert_ne!(st.template_of_row()[0], st.template_of_row()[3]);
        assert_eq!(st.template_deltas(st.template_of_row()[0]), &[0, 1]);
    }

    #[test]
    fn batches_cover_all_rows_exactly_once() {
        let row_ptr = vec![0usize, 1, 2, 3, 4, 5];
        let col_idx = vec![0u32, 1, 2, 3, 4]; // diagonal: one template
        let st = analyze(&row_ptr, &col_idx);
        assert_eq!(st.ntemplates(), 1);
        assert_eq!(
            st.batches(),
            &[Batch {
                start: 0,
                len: 5,
                template: 0
            }]
        );
        let covered: usize = st.batches().iter().map(|t| t.len as usize).sum();
        assert_eq!(covered, 5);
    }

    #[test]
    fn empty_pattern_is_fine() {
        let st = analyze(&[0usize], &[]);
        assert_eq!(st.ntemplates(), 0);
        assert!(st.batches().is_empty());
        let stats = st.stats();
        assert_eq!(stats.nrows, 0);
        assert_eq!(stats.hit_rate, 0.0);
    }

    #[test]
    fn empty_rows_get_their_own_template() {
        // Rows 1 and 3 are empty: same (empty) relative pattern, so they
        // share a template even though they are not adjacent.
        let row_ptr = vec![0usize, 1, 1, 2, 2];
        let col_idx = vec![0u32, 2];
        let st = analyze(&row_ptr, &col_idx);
        assert_eq!(st.template_of_row()[1], st.template_of_row()[3]);
        assert_eq!(st.template_deltas(st.template_of_row()[1]), &[] as &[i64]);
    }
}
