//! Compressed sparse row (CSR) storage — the PETSc `AIJ` analogue.
//!
//! CSR is the point-wise (non-blocked) format the paper's Table 1 baseline
//! uses.  Column indices are stored as `u32`: at the meshes considered (up to
//! 2.8M vertices x 5 unknowns = 14M rows) 32-bit indices suffice, and the
//! integer-load traffic of the index array is itself one of the quantities the
//! paper's SpMV model accounts for.

/// A sparse matrix in compressed sparse row format with `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (wrong lengths, non-monotone row
    /// pointers, or column indices out of range).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(
            row_ptr.len(),
            nrows + 1,
            "row_ptr must have nrows+1 entries"
        );
        assert_eq!(
            col_idx.len(),
            values.len(),
            "col_idx/values length mismatch"
        );
        assert_eq!(
            *row_ptr.last().unwrap(),
            col_idx.len(),
            "row_ptr end != nnz"
        );
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr not monotone"
        );
        assert!(
            col_idx.iter().all(|&c| (c as usize) < ncols),
            "column index out of range"
        );
        Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// An `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self::from_raw(
            n,
            n,
            (0..=n).collect(),
            (0..n as u32).collect(),
            vec![1.0; n],
        )
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row pointer array (length `nrows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column index array (length `nnz`).
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The value array (length `nnz`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the values (the sparsity pattern is fixed).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Column indices of row `i`.
    pub fn row_cols(&self, i: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Values of row `i`.
    pub fn row_vals(&self, i: usize) -> &[f64] {
        &self.values[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Entry `(i, j)`, or `0.0` when not stored. Binary search within the row
    /// (rows are kept sorted by the builders).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let cols = self.row_cols(i);
        match cols.binary_search(&(j as u32)) {
            Ok(k) => self.row_vals(i)[k],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix-vector product `y <- A x`.
    ///
    /// This is the kernel whose cache behaviour Section 2.1.1 models; its
    /// reference stream is: the row pointer (streamed), the column indices
    /// (streamed), the values (streamed), and the gathered entries of `x`
    /// (indexed — the locality-sensitive part).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv y length mismatch");
        for i in 0..self.nrows {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut sum = 0.0;
            for k in lo..hi {
                sum += self.values[k] * x[self.col_idx[k] as usize];
            }
            y[i] = sum;
        }
    }

    /// Row-partitioned parallel [`spmv`](Self::spmv): each thread computes
    /// the rows of its contiguous chunk into the matching disjoint slice of
    /// `y`.  Every `y[i]` is the same left-to-right row sum as the
    /// sequential kernel, so the result is bitwise identical for any thread
    /// count.
    pub fn spmv_par(&self, x: &[f64], y: &mut [f64], ctx: &crate::par::ParCtx) {
        assert_eq!(x.len(), self.ncols, "spmv x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv y length mismatch");
        if ctx.nthreads() == 1 {
            return self.spmv(x, y);
        }
        ctx.parallel_for_slices("spmv_csr", y, 1, |_, rows, ysub| {
            for (yi, i) in ysub.iter_mut().zip(rows) {
                let mut sum = 0.0;
                for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                    sum += self.values[k] * x[self.col_idx[k] as usize];
                }
                *yi = sum;
            }
        });
    }

    /// Analytic bytes moved by one [`spmv`](Self::spmv) call under perfect
    /// source-vector reuse — the Eq. 1 traffic floor with `miss_factor = 1`:
    /// streamed values (8 B/nnz), column indices (4 B/nnz), the row pointer
    /// (8 B/row), one read of the gathered source entries and one write of
    /// the destination (8 B/row each).  Dividing by a measured span time
    /// gives the achieved-bandwidth figure the profiler reports.
    pub fn spmv_traffic_bytes(&self) -> f64 {
        let nnz = self.values.len() as f64;
        let nrows = self.nrows as f64;
        8.0 * nnz + 4.0 * nnz + 8.0 * (nrows + 1.0) + 8.0 * nrows + 8.0 * nrows
    }

    /// `y <- y + A x`.
    pub fn spmv_add(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv y length mismatch");
        for i in 0..self.nrows {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut sum = y[i];
            for k in lo..hi {
                sum += self.values[k] * x[self.col_idx[k] as usize];
            }
            y[i] = sum;
        }
    }

    /// Matrix bandwidth: `max_i max_{j in row i} |i - j|`.
    ///
    /// The interlaced-layout miss bound (Eq. 2 of the paper) is parameterized
    /// by this quantity (`beta`).
    pub fn bandwidth(&self) -> usize {
        let mut beta = 0usize;
        for i in 0..self.nrows {
            for &c in self.row_cols(i) {
                beta = beta.max(i.abs_diff(c as usize));
            }
        }
        beta
    }

    /// Symmetrically permute a square matrix: `B[p[i], p[j]] = A[i, j]`.
    ///
    /// `perm` maps old index -> new index; this is how RCM vertex orderings
    /// are applied to assembled Jacobians.
    pub fn permute_symmetric(&self, perm: &[usize]) -> CsrMatrix {
        assert_eq!(
            self.nrows, self.ncols,
            "symmetric permute needs square matrix"
        );
        assert_eq!(perm.len(), self.nrows, "permutation length mismatch");
        let mut inv = vec![usize::MAX; perm.len()];
        for (old, &new) in perm.iter().enumerate() {
            assert!(new < perm.len(), "permutation value out of range");
            assert!(inv[new] == usize::MAX, "permutation is not a bijection");
            inv[new] = old;
        }
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        row_ptr.push(0);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for new_i in 0..self.nrows {
            let old_i = inv[new_i];
            scratch.clear();
            for (k, &c) in self.row_cols(old_i).iter().enumerate() {
                scratch.push((perm[c as usize] as u32, self.row_vals(old_i)[k]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw(self.nrows, self.ncols, row_ptr, col_idx, values)
    }

    /// Transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for j in 0..self.ncols {
            counts[j + 1] += counts[j];
        }
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts.clone();
        for i in 0..self.nrows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k] as usize;
                let slot = next[j];
                col_idx[slot] = i as u32;
                values[slot] = self.values[k];
                next[j] += 1;
            }
        }
        CsrMatrix::from_raw(self.ncols, self.nrows, counts, col_idx, values)
    }

    /// Extract the principal submatrix on `rows` (same index set for columns),
    /// renumbering to local indices. Used to build subdomain (Schwarz) blocks.
    /// `rows` need not be sorted; local ordering follows `rows` order.
    pub fn extract_principal_submatrix(&self, rows: &[usize]) -> CsrMatrix {
        assert_eq!(self.nrows, self.ncols);
        let mut global_to_local = vec![u32::MAX; self.ncols];
        for (l, &g) in rows.iter().enumerate() {
            global_to_local[g] = l as u32;
        }
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for &g in rows {
            scratch.clear();
            for (k, &c) in self.row_cols(g).iter().enumerate() {
                let l = global_to_local[c as usize];
                if l != u32::MAX {
                    scratch.push((l, self.row_vals(g)[k]));
                }
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw(rows.len(), rows.len(), row_ptr, col_idx, values)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Scale all values by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.values {
            *v *= alpha;
        }
    }

    /// Add `alpha` to each diagonal entry (the entry must exist in the
    /// pattern). Used by pseudo-transient continuation to add `V/dt` terms.
    ///
    /// # Panics
    /// Panics if some diagonal entry is not in the sparsity pattern.
    pub fn shift_diagonal(&mut self, alpha: f64) {
        assert_eq!(self.nrows, self.ncols);
        for i in 0..self.nrows {
            let lo = self.row_ptr[i];
            let cols = &self.col_idx[lo..self.row_ptr[i + 1]];
            match cols.binary_search(&(i as u32)) {
                Ok(k) => self.values[lo + k] += alpha,
                Err(_) => panic!("diagonal entry ({i},{i}) missing from pattern"),
            }
        }
    }

    /// Add `alpha * d[i]` to diagonal entry `i` (per-row shift, e.g. cell
    /// volume over timestep).
    pub fn shift_diagonal_by(&mut self, alpha: f64, d: &[f64]) {
        assert_eq!(self.nrows, self.ncols);
        assert_eq!(d.len(), self.nrows);
        for i in 0..self.nrows {
            let lo = self.row_ptr[i];
            let cols = &self.col_idx[lo..self.row_ptr[i + 1]];
            match cols.binary_search(&(i as u32)) {
                Ok(k) => self.values[lo + k] += alpha * d[i],
                Err(_) => panic!("diagonal entry ({i},{i}) missing from pattern"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn small() -> CsrMatrix {
        // [ 2 1 0 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(0, 1, 1.0);
        t.push(1, 1, 3.0);
        t.push(2, 0, 4.0);
        t.push(2, 2, 5.0);
        t.to_csr()
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, [4.0, 6.0, 19.0]);
    }

    #[test]
    fn spmv_add_accumulates() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        a.spmv_add(&x, &mut y);
        assert_eq!(y, [5.0, 7.0, 20.0]);
    }

    #[test]
    fn identity_spmv_is_noop() {
        let a = CsrMatrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 4];
        a.spmv(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn bandwidth_of_small() {
        assert_eq!(small().bandwidth(), 2); // entry (2,0)
        assert_eq!(CsrMatrix::identity(5).bandwidth(), 0);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = small();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
        assert_eq!(a.transpose().get(0, 2), 4.0);
    }

    #[test]
    fn symmetric_permute_preserves_entries() {
        let a = small();
        let perm = vec![2usize, 0, 1]; // old->new
        let b = a.permute_symmetric(&perm);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a.get(i, j), b.get(perm[i], perm[j]), "({i},{j})");
            }
        }
    }

    #[test]
    fn submatrix_extraction() {
        let a = small();
        let s = a.extract_principal_submatrix(&[0, 2]);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.get(0, 0), 2.0); // (0,0)
        assert_eq!(s.get(1, 0), 4.0); // (2,0)
        assert_eq!(s.get(1, 1), 5.0); // (2,2)
        assert_eq!(s.get(0, 1), 0.0); // (0,2) not stored
    }

    #[test]
    fn submatrix_respects_row_order() {
        let a = small();
        let s = a.extract_principal_submatrix(&[2, 0]);
        assert_eq!(s.get(0, 0), 5.0); // (2,2)
        assert_eq!(s.get(0, 1), 4.0); // (2,0)
        assert_eq!(s.get(1, 1), 2.0); // (0,0)
    }

    #[test]
    fn shift_diagonal_adds() {
        let mut a = small();
        a.shift_diagonal(10.0);
        assert_eq!(a.get(0, 0), 12.0);
        assert_eq!(a.get(1, 1), 13.0);
        assert_eq!(a.get(2, 2), 15.0);
    }

    #[test]
    fn shift_diagonal_by_uses_weights() {
        let mut a = small();
        a.shift_diagonal_by(2.0, &[1.0, 10.0, 100.0]);
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(1, 1), 23.0);
        assert_eq!(a.get(2, 2), 205.0);
    }

    #[test]
    #[should_panic(expected = "missing from pattern")]
    fn shift_diagonal_missing_panics() {
        // No (1,1) entry.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        let mut a = t.to_csr();
        a.shift_diagonal(1.0);
    }

    #[test]
    #[should_panic(expected = "not monotone")]
    fn from_raw_validates_row_ptr() {
        CsrMatrix::from_raw(3, 2, vec![0, 2, 1, 2], vec![0, 1], vec![1.0, 2.0]);
    }

    #[test]
    fn frobenius_and_scale() {
        let mut a = CsrMatrix::identity(4);
        assert_eq!(a.frobenius_norm(), 2.0);
        a.scale(3.0);
        assert_eq!(a.frobenius_norm(), 6.0);
    }
}
