//! Small dense block helpers for the block (BAIJ-style) kernels.
//!
//! Structural blocking stores the Jacobian of a multicomponent PDE system as
//! small dense `b x b` blocks (`b` = unknowns per mesh point: 4 incompressible,
//! 5 compressible).  The block preconditioners need to factor and apply those
//! blocks; this module provides an LU factorization with partial pivoting for
//! tiny row-major matrices, plus the matvec/axpy kernels used inside block
//! SpMV and block triangular solves.

/// LU factorization with partial pivoting of a small row-major `n x n` matrix,
/// stored in place.  `piv[i]` records the row swapped into position `i`.
///
/// Returns `Err(i)` if a zero (or subnormal) pivot is met at step `i`.
pub fn lu_factor(a: &mut [f64], piv: &mut [usize], n: usize) -> Result<(), usize> {
    assert_eq!(a.len(), n * n);
    assert_eq!(piv.len(), n);
    for k in 0..n {
        // Partial pivoting: find the largest entry in column k at/below row k.
        let mut p = k;
        let mut pmax = a[k * n + k].abs();
        for i in (k + 1)..n {
            let v = a[i * n + k].abs();
            if v > pmax {
                pmax = v;
                p = i;
            }
        }
        // Negated on purpose: a NaN pivot must also take the error path.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(pmax > f64::MIN_POSITIVE) {
            return Err(k);
        }
        piv[k] = p;
        if p != k {
            for j in 0..n {
                a.swap(k * n + j, p * n + j);
            }
        }
        let pivot = a[k * n + k];
        for i in (k + 1)..n {
            let m = a[i * n + k] / pivot;
            a[i * n + k] = m;
            for j in (k + 1)..n {
                a[i * n + j] -= m * a[k * n + j];
            }
        }
    }
    Ok(())
}

/// Solve `A x = b` given the factors produced by [`lu_factor`]; `x` holds `b`
/// on entry and the solution on exit.
pub fn lu_solve(lu: &[f64], piv: &[usize], x: &mut [f64], n: usize) {
    debug_assert_eq!(lu.len(), n * n);
    debug_assert_eq!(piv.len(), n);
    debug_assert_eq!(x.len(), n);
    // Apply the row interchanges, then L (unit lower), then U.
    for k in 0..n {
        x.swap(k, piv[k]);
    }
    for i in 1..n {
        let mut s = x[i];
        for j in 0..i {
            s -= lu[i * n + j] * x[j];
        }
        x[i] = s;
    }
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in (i + 1)..n {
            s -= lu[i * n + j] * x[j];
        }
        x[i] = s / lu[i * n + i];
    }
}

/// Invert a small matrix using its LU factors: `inv` receives the inverse in
/// row-major order.  Used to store explicit inverses of ILU diagonal blocks so
/// that the block triangular solves become pure matvecs (the layout the
/// paper's BAIJ kernels use).
pub fn lu_invert(lu: &[f64], piv: &[usize], inv: &mut [f64], n: usize) {
    debug_assert_eq!(inv.len(), n * n);
    let mut col = vec![0.0; n];
    for j in 0..n {
        col.iter_mut().for_each(|v| *v = 0.0);
        col[j] = 1.0;
        lu_solve(lu, piv, &mut col, n);
        for i in 0..n {
            inv[i * n + j] = col[i];
        }
    }
}

/// `y <- y + A x` for a row-major `n x n` block.
#[inline]
pub fn block_gemv_add(a: &[f64], x: &[f64], y: &mut [f64], n: usize) {
    debug_assert_eq!(a.len(), n * n);
    for i in 0..n {
        let row = &a[i * n..(i + 1) * n];
        let mut s = y[i];
        for j in 0..n {
            s += row[j] * x[j];
        }
        y[i] = s;
    }
}

/// `y <- y - A x` for a row-major `n x n` block.
#[inline]
pub fn block_gemv_sub(a: &[f64], x: &[f64], y: &mut [f64], n: usize) {
    debug_assert_eq!(a.len(), n * n);
    for i in 0..n {
        let row = &a[i * n..(i + 1) * n];
        let mut s = y[i];
        for j in 0..n {
            s -= row[j] * x[j];
        }
        y[i] = s;
    }
}

/// `y <- A x` for a row-major `n x n` block.
#[inline]
pub fn block_gemv(a: &[f64], x: &[f64], y: &mut [f64], n: usize) {
    debug_assert_eq!(a.len(), n * n);
    for i in 0..n {
        let row = &a[i * n..(i + 1) * n];
        let mut s = 0.0;
        for j in 0..n {
            s += row[j] * x[j];
        }
        y[i] = s;
    }
}

/// `y <- y - A x` for a row-major `N x N` block with `N` known at compile
/// time: the const-unrolled lane twin of [`block_gemv_sub`], used by the
/// fixed/batched block-ILU sweep kernels.
///
/// Bitwise identical to [`block_gemv_sub`]: each accumulator `y[r]` sees
/// its subtractions in ascending-column order either way (the lane form
/// only interleaves updates to *different* accumulators), and Rust never
/// contracts `f64` mul+sub into a fused op.
#[inline(always)]
pub fn block_gemv_sub_b<const N: usize>(a: &[f64], x: &[f64], y: &mut [f64; N]) {
    debug_assert!(a.len() >= N * N);
    debug_assert!(x.len() >= N);
    for c in 0..N {
        let xc = x[c];
        for r in 0..N {
            y[r] -= a[r * N + c] * xc;
        }
    }
}

/// `A x` for a row-major `N x N` block with `N` known at compile time —
/// the const-unrolled twin of [`block_gemv`], bitwise identical by the
/// same argument as [`block_gemv_sub_b`].
#[inline(always)]
pub fn block_gemv_b<const N: usize>(a: &[f64], x: &[f64; N]) -> [f64; N] {
    debug_assert!(a.len() >= N * N);
    let mut y = [0.0f64; N];
    for c in 0..N {
        let xc = x[c];
        for r in 0..N {
            y[r] += a[r * N + c] * xc;
        }
    }
    y
}

/// `C <- C - A * B` for row-major `n x n` blocks (the Schur update inside the
/// block ILU factorization).
#[inline]
pub fn block_gemm_sub(a: &[f64], b: &[f64], c: &mut [f64], n: usize) {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n * n);
    debug_assert_eq!(c.len(), n * n);
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] -= aik * b[k * n + j];
            }
        }
    }
}

/// `C <- A * B` for row-major `n x n` blocks.
#[inline]
pub fn block_gemm(a: &[f64], b: &[f64], c: &mut [f64], n: usize) {
    debug_assert_eq!(c.len(), n * n);
    for v in c.iter_mut() {
        *v = 0.0;
    }
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matvec(a: &[f64], x: &[f64], n: usize) -> Vec<f64> {
        let mut y = vec![0.0; n];
        block_gemv(a, x, &mut y, n);
        y
    }

    #[test]
    fn lu_solves_identity() {
        let n = 3;
        let mut a = vec![0.0; 9];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let mut piv = vec![0; n];
        lu_factor(&mut a, &mut piv, n).unwrap();
        let mut x = vec![1.0, 2.0, 3.0];
        lu_solve(&a, &piv, &mut x, n);
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn lu_solves_general_4x4() {
        let n = 4;
        // A well-conditioned but unsymmetric matrix.
        let a0: Vec<f64> = vec![
            4.0, 1.0, 0.0, 2.0, //
            1.0, 5.0, 1.0, 0.0, //
            0.0, 2.0, 6.0, 1.0, //
            1.0, 0.0, 1.0, 7.0,
        ];
        let xtrue = vec![1.0, -2.0, 3.0, -4.0];
        let b = matvec(&a0, &xtrue, n);
        let mut lu = a0.clone();
        let mut piv = vec![0; n];
        lu_factor(&mut lu, &mut piv, n).unwrap();
        let mut x = b;
        lu_solve(&lu, &piv, &mut x, n);
        for (xi, ti) in x.iter().zip(&xtrue) {
            assert!((xi - ti).abs() < 1e-12, "{xi} vs {ti}");
        }
    }

    #[test]
    fn lu_requires_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let n = 2;
        let a0 = vec![0.0, 1.0, 1.0, 0.0];
        let mut lu = a0.clone();
        let mut piv = vec![0; n];
        lu_factor(&mut lu, &mut piv, n).unwrap();
        let mut x = vec![3.0, 5.0]; // b = [3,5] => x = [5,3]
        lu_solve(&lu, &piv, &mut x, n);
        assert!((x[0] - 5.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn lu_detects_singularity() {
        let n = 2;
        let mut a = vec![1.0, 2.0, 2.0, 4.0]; // rank 1
        let mut piv = vec![0; n];
        assert_eq!(lu_factor(&mut a, &mut piv, n), Err(1));
    }

    #[test]
    fn invert_recovers_inverse() {
        let n = 3;
        let a0 = vec![2.0, 0.0, 1.0, 0.0, 3.0, 0.0, 1.0, 0.0, 2.0];
        let mut lu = a0.clone();
        let mut piv = vec![0; n];
        lu_factor(&mut lu, &mut piv, n).unwrap();
        let mut inv = vec![0.0; 9];
        lu_invert(&lu, &piv, &mut inv, n);
        // A * inv(A) = I
        let mut prod = vec![0.0; 9];
        block_gemm(&a0, &inv, &mut prod, n);
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[i * n + j] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemv_add_sub_roundtrip() {
        let n = 2;
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let x = vec![5.0, 6.0];
        let mut y = vec![1.0, 1.0];
        block_gemv_add(&a, &x, &mut y, n);
        block_gemv_sub(&a, &x, &mut y, n);
        assert_eq!(y, vec![1.0, 1.0]);
    }

    #[test]
    fn fixed_gemv_twins_match_runtime_bitwise() {
        // The const-unrolled lane kernels must be bitwise equal to the
        // runtime-n loops — they feed the kernel-identity guarantee.
        let n = 5;
        let a: Vec<f64> = (0..n * n)
            .map(|i| ((i * 37) % 13) as f64 * 0.17 - 1.0)
            .collect();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.71).sin()).collect();
        let mut y1 = vec![0.5; n];
        block_gemv_sub(&a, &x, &mut y1, n);
        let mut y2 = [0.5f64; 5];
        block_gemv_sub_b::<5>(&a, &x, &mut y2);
        assert_eq!(y1, y2);
        let mut y3 = vec![0.0; n];
        block_gemv(&a, &x, &mut y3, n);
        let xa: [f64; 5] = x.as_slice().try_into().unwrap();
        let y4 = block_gemv_b::<5>(&a, &xa);
        assert_eq!(y3, y4);
    }

    #[test]
    fn gemm_sub_matches_manual() {
        let n = 2;
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut c = vec![10.0, 10.0, 10.0, 10.0];
        block_gemm_sub(&a, &b, &mut c, n);
        assert_eq!(c, vec![9.0, 8.0, 7.0, 6.0]);
    }
}
