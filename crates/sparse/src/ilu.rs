//! Incomplete LU factorization with level-of-fill — ILU(k) — and the
//! sparse triangular solves that dominate the preconditioner application.
//!
//! Two paper sections live here:
//!
//! * **Section 2.4.3 / Table 4** varies the fill level `k` in {0, 1, 2} of the
//!   subdomain solver inside the additive Schwarz preconditioner.
//! * **Section 2.2 / Table 2** stores the factors in *single precision* while
//!   performing all arithmetic in double precision: the triangular solves are
//!   memory-bandwidth bound, so halving the bytes moved nearly doubles the
//!   rate without affecting the convergence of the (already approximate)
//!   preconditioner.
//!
//! The factors are held as split L / U CSR arrays with an inverted diagonal,
//! the layout PETSc's native ILU uses so that the inner solve loops contain
//! no divisions.

use crate::csr::CsrMatrix;
use crate::par::{DisjointSliceMut, ParCtx};

/// Precision in which the factor *values* are stored.  Arithmetic is always
/// performed in `f64` (values are widened on load), exactly like the paper's
/// single-precision-storage experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrecStorage {
    /// Store factors as `f64` (8 bytes per entry).
    #[default]
    Double,
    /// Store factors as `f32` (4 bytes per entry), halving solve-phase
    /// memory traffic.
    Single,
}

/// Options controlling the incomplete factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IluOptions {
    /// Level of fill `k` in ILU(k). 0 keeps the pattern of `A`.
    pub fill_level: usize,
    /// Storage precision of the factors.
    pub storage: PrecStorage,
}

impl IluOptions {
    /// ILU(k) with double-precision storage.
    pub fn with_fill(fill_level: usize) -> Self {
        Self {
            fill_level,
            storage: PrecStorage::Double,
        }
    }
}

/// Errors from the numeric factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IluError {
    /// A zero (or denormal) pivot at the given row; the matrix needs a shift
    /// or a different ordering.
    ZeroPivot(usize),
}

impl std::fmt::Display for IluError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IluError::ZeroPivot(i) => write!(f, "zero pivot encountered at row {i}"),
        }
    }
}

impl std::error::Error for IluError {}

/// Factor values in the selected storage precision.
#[derive(Debug, Clone)]
enum FactorValues {
    F64 {
        l: Vec<f64>,
        u: Vec<f64>,
        inv_diag: Vec<f64>,
    },
    F32 {
        l: Vec<f32>,
        u: Vec<f32>,
        inv_diag: Vec<f32>,
    },
}

/// Rows bucketed by dependency depth through a triangular pattern — the
/// level sets of a level-scheduled parallel sweep.  Depends only on the
/// symbolic pattern, so it is computed once at factor time and survives
/// numeric refactorization.
#[derive(Debug, Clone, Default)]
pub(crate) struct LevelSchedule {
    /// CSR-style offsets into `rows`, length `nlevels + 1`.
    pub ptr: Vec<usize>,
    /// Row indices grouped by level.  Rows within one level have no
    /// dependencies on each other and may be processed concurrently.
    pub rows: Vec<u32>,
}

impl LevelSchedule {
    pub fn nlevels(&self) -> usize {
        self.ptr.len() - 1
    }

    pub fn level(&self, l: usize) -> &[u32] {
        &self.rows[self.ptr[l]..self.ptr[l + 1]]
    }
}

/// Bucket the `n` rows of a triangular pattern `(ptr, idx)` by dependency
/// depth: `depth(i) = 1 + max(depth(j))` over the rows `j` that row `i`
/// reads.  `reverse = false` walks rows ascending (forward / lower solve,
/// dependencies point down), `reverse = true` walks descending (backward /
/// upper solve, dependencies point up).
pub(crate) fn level_schedule(n: usize, ptr: &[usize], idx: &[u32], reverse: bool) -> LevelSchedule {
    let mut depth = vec![0u32; n];
    let mut nlev = 0usize;
    let row_depth = |i: usize, depth: &[u32]| -> u32 {
        let mut d = 0;
        for &j in &idx[ptr[i]..ptr[i + 1]] {
            d = d.max(depth[j as usize] + 1);
        }
        d
    };
    if reverse {
        for i in (0..n).rev() {
            let d = row_depth(i, &depth);
            depth[i] = d;
            nlev = nlev.max(d as usize + 1);
        }
    } else {
        for i in 0..n {
            let d = row_depth(i, &depth);
            depth[i] = d;
            nlev = nlev.max(d as usize + 1);
        }
    }
    // Counting sort by depth keeps rows ascending within each level.
    let mut counts = vec![0usize; nlev + 1];
    for &d in &depth {
        counts[d as usize + 1] += 1;
    }
    for l in 0..nlev {
        counts[l + 1] += counts[l];
    }
    let out_ptr = counts.clone();
    let mut next = counts;
    let mut rows = vec![0u32; n];
    for (i, &d) in depth.iter().enumerate() {
        rows[next[d as usize]] = i as u32;
        next[d as usize] += 1;
    }
    LevelSchedule { ptr: out_ptr, rows }
}

/// An ILU(k) factorization `A ~= L U` with unit-diagonal `L` and inverted
/// stored diagonal of `U`.
#[derive(Debug, Clone)]
pub struct IluFactors {
    n: usize,
    fill_level: usize,
    /// Strictly-lower pattern, per row.
    l_ptr: Vec<usize>,
    l_idx: Vec<u32>,
    /// Strictly-upper pattern, per row.
    u_ptr: Vec<usize>,
    u_idx: Vec<u32>,
    vals: FactorValues,
    /// Level sets for the parallel forward (L) and backward (U) sweeps.
    l_levels: LevelSchedule,
    u_levels: LevelSchedule,
}

impl IluFactors {
    /// Compute the ILU(k) factorization of a square CSR matrix.
    pub fn factor(a: &CsrMatrix, opts: &IluOptions) -> Result<Self, IluError> {
        assert_eq!(a.nrows(), a.ncols(), "ILU requires a square matrix");
        let n = a.nrows();
        let (l_ptr, l_idx, u_ptr, u_idx) = symbolic_iluk(a, opts.fill_level);
        let l_levels = level_schedule(n, &l_ptr, &l_idx, false);
        let u_levels = level_schedule(n, &u_ptr, &u_idx, true);
        let mut me = Self {
            n,
            fill_level: opts.fill_level,
            l_ptr,
            l_idx,
            u_ptr,
            u_idx,
            vals: FactorValues::F64 {
                l: Vec::new(),
                u: Vec::new(),
                inv_diag: Vec::new(),
            },
            l_levels,
            u_levels,
        };
        me.refactor_with_storage(a, opts.storage)?;
        Ok(me)
    }

    /// Recompute numeric values on the existing symbolic pattern (the paper's
    /// "refresh frequency for Jacobian preconditioner" knob relies on cheap
    /// refactorization).
    pub fn refactor(&mut self, a: &CsrMatrix) -> Result<(), IluError> {
        let storage = match &self.vals {
            FactorValues::F64 { .. } => PrecStorage::Double,
            FactorValues::F32 { .. } => PrecStorage::Single,
        };
        self.refactor_with_storage(a, storage)
    }

    fn refactor_with_storage(
        &mut self,
        a: &CsrMatrix,
        storage: PrecStorage,
    ) -> Result<(), IluError> {
        let n = self.n;
        assert_eq!(a.nrows(), n, "refactor dimension mismatch");
        let mut lvals = vec![0.0f64; self.l_idx.len()];
        let mut uvals = vec![0.0f64; self.u_idx.len()];
        let mut inv_diag = vec![0.0f64; n];

        // Dense work row with a stamp-based membership mask.
        let mut w = vec![0.0f64; n];
        let mut stamp = vec![usize::MAX; n];
        // Position of column j inside the current row's L or U value slice.
        let mut pos = vec![usize::MAX; n];

        for i in 0..n {
            // Scatter the pattern of row i.
            let lr = self.l_ptr[i]..self.l_ptr[i + 1];
            let ur = self.u_ptr[i]..self.u_ptr[i + 1];
            for (slot, &j) in self.l_idx[lr.clone()].iter().enumerate() {
                let j = j as usize;
                stamp[j] = i;
                w[j] = 0.0;
                pos[j] = self.l_ptr[i] + slot;
            }
            for (slot, &j) in self.u_idx[ur.clone()].iter().enumerate() {
                let j = j as usize;
                stamp[j] = i;
                w[j] = 0.0;
                pos[j] = self.u_ptr[i] + slot;
            }
            stamp[i] = i;
            w[i] = 0.0;
            // Scatter A's row i (entries outside the pattern cannot exist:
            // the symbolic pattern contains A's pattern).
            for (k, &c) in a.row_cols(i).iter().enumerate() {
                w[c as usize] = a.row_vals(i)[k];
            }
            // Eliminate using previously factored rows, ascending column order
            // (l_idx rows are sorted by construction).
            for li in lr.clone() {
                let k = self.l_idx[li] as usize;
                let lik = w[k] * inv_diag[k];
                w[k] = lik;
                // Update against U row k, dropping fill outside the pattern.
                for ui in self.u_ptr[k]..self.u_ptr[k + 1] {
                    let j = self.u_idx[ui] as usize;
                    if stamp[j] == i {
                        w[j] -= lik * uvals[ui];
                    }
                }
            }
            let piv = w[i];
            // Negated on purpose: a NaN pivot must also take the error path.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(piv.abs() > f64::MIN_POSITIVE) {
                return Err(IluError::ZeroPivot(i));
            }
            inv_diag[i] = 1.0 / piv;
            for li in lr {
                lvals[li] = w[self.l_idx[li] as usize];
            }
            for ui in ur {
                uvals[ui] = w[self.u_idx[ui] as usize];
            }
        }

        self.vals = match storage {
            PrecStorage::Double => FactorValues::F64 {
                l: lvals,
                u: uvals,
                inv_diag,
            },
            PrecStorage::Single => FactorValues::F32 {
                l: lvals.iter().map(|&v| v as f32).collect(),
                u: uvals.iter().map(|&v| v as f32).collect(),
                inv_diag: inv_diag.iter().map(|&v| v as f32).collect(),
            },
        };
        Ok(())
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The fill level this factorization was built with.
    pub fn fill_level(&self) -> usize {
        self.fill_level
    }

    /// The precision the factor values are stored in.
    pub fn storage(&self) -> PrecStorage {
        match &self.vals {
            FactorValues::F64 { .. } => PrecStorage::Double,
            FactorValues::F32 { .. } => PrecStorage::Single,
        }
    }

    /// Whether this factorization can serve as a symbolic template for
    /// factoring matrices with `opts` via clone + [`IluFactors::refactor`]:
    /// same dimension, fill level, and storage precision.  The caller must
    /// additionally guarantee the matrix *pattern* matches the one this was
    /// factored from (e.g. Jacobians of the same mesh family and layout);
    /// the numeric refactorization is then bitwise identical to a fresh
    /// [`IluFactors::factor`], with the symbolic analysis skipped.
    pub fn is_template_for(&self, n: usize, opts: &IluOptions) -> bool {
        self.n == n && self.fill_level == opts.fill_level && self.storage() == opts.storage
    }

    /// Total stored entries (L + U + diagonal).
    pub fn nnz(&self) -> usize {
        self.l_idx.len() + self.u_idx.len() + self.n
    }

    /// Bytes occupied by factor values — the quantity the single-precision
    /// experiment halves.
    pub fn value_bytes(&self) -> usize {
        match &self.vals {
            FactorValues::F64 { .. } => self.nnz() * 8,
            FactorValues::F32 { .. } => self.nnz() * 4,
        }
    }

    /// Analytic bytes moved by one triangular solve (forward + backward):
    /// every factor value is touched exactly once (4 or 8 B each per
    /// [`Self::value_bytes`]), each off-diagonal entry carries a 4-byte
    /// column index, the two row-pointer arrays stream once, and `x` is
    /// read and written through both sweeps (Section 2.2's
    /// bandwidth-bound loop).
    pub fn solve_traffic_bytes(&self) -> f64 {
        let n = self.n as f64;
        let offdiag = (self.l_idx.len() + self.u_idx.len()) as f64;
        self.value_bytes() as f64 + 4.0 * offdiag + 2.0 * 8.0 * (n + 1.0) + 4.0 * 8.0 * n
    }

    /// Strictly-lower pattern arrays `(ptr, idx)`.
    pub fn l_pattern(&self) -> (&[usize], &[u32]) {
        (&self.l_ptr, &self.l_idx)
    }

    /// Strictly-upper pattern arrays `(ptr, idx)`.
    pub fn u_pattern(&self) -> (&[usize], &[u32]) {
        (&self.u_ptr, &self.u_idx)
    }

    /// Apply the preconditioner: `x <- U^{-1} L^{-1} b`.
    pub fn solve(&self, b: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        assert_eq!(x.len(), self.n);
        x.copy_from_slice(b);
        self.solve_in_place(x);
    }

    /// In-place triangular solves. This is the memory-bandwidth-bound loop of
    /// Section 2.2: each factor value is touched exactly once per solve.
    pub fn solve_in_place(&self, x: &mut [f64]) {
        match &self.vals {
            FactorValues::F64 { l, u, inv_diag } => tri_solve(
                &self.l_ptr,
                &self.l_idx,
                l,
                &self.u_ptr,
                &self.u_idx,
                u,
                inv_diag,
                x,
            ),
            FactorValues::F32 { l, u, inv_diag } => tri_solve(
                &self.l_ptr,
                &self.l_idx,
                l,
                &self.u_ptr,
                &self.u_idx,
                u,
                inv_diag,
                x,
            ),
        }
    }

    /// Number of dependency levels in the (forward, backward) sweeps.  The
    /// available solve-phase parallelism is `n / max(levels)` rows per
    /// level on average.
    pub fn level_counts(&self) -> (usize, usize) {
        (self.l_levels.nlevels(), self.u_levels.nlevels())
    }

    /// Parallel [`solve`](Self::solve) via level-scheduled sweeps.
    pub fn solve_par(&self, b: &[f64], x: &mut [f64], ctx: &ParCtx) {
        assert_eq!(b.len(), self.n);
        assert_eq!(x.len(), self.n);
        x.copy_from_slice(b);
        self.solve_in_place_par(x, ctx);
    }

    /// Level-scheduled parallel [`solve_in_place`](Self::solve_in_place):
    /// rows are swept level by level (levels computed at factor time from
    /// the symbolic pattern); rows within a level have no mutual
    /// dependencies and are partitioned across the team.  Each `x[i]` is
    /// produced by the exact sequential row loop, so the result is bitwise
    /// identical for any thread count.
    pub fn solve_in_place_par(&self, x: &mut [f64], ctx: &ParCtx) {
        if ctx.nthreads() == 1 {
            return self.solve_in_place(x);
        }
        match &self.vals {
            FactorValues::F64 { l, u, inv_diag } => self.tri_solve_par(l, u, inv_diag, x, ctx),
            FactorValues::F32 { l, u, inv_diag } => self.tri_solve_par(l, u, inv_diag, x, ctx),
        }
    }

    fn tri_solve_par<T: WidenToF64 + Sync>(
        &self,
        lvals: &[T],
        uvals: &[T],
        inv_diag: &[T],
        x: &mut [f64],
        ctx: &ParCtx,
    ) {
        let view = DisjointSliceMut::new(x);
        // Forward: L y = b.  Every row in a level writes only its own x[i]
        // and reads x[j] finalized in an earlier level.
        for lev in 0..self.l_levels.nlevels() {
            let rows = self.l_levels.level(lev);
            ctx.parallel_for("ilu_lower", rows.len(), |_, r| {
                for &iu in &rows[r] {
                    let i = iu as usize;
                    // SAFETY: rows within a level are distinct (each writes
                    // only index i) and l_idx reads were finalized by the
                    // barrier at the end of the previous level.
                    unsafe {
                        let mut s = view.get(i);
                        for k in self.l_ptr[i]..self.l_ptr[i + 1] {
                            s -= lvals[k].widen() * view.get(self.l_idx[k] as usize);
                        }
                        view.set(i, s);
                    }
                }
            });
        }
        // Backward: U x = y.
        for lev in 0..self.u_levels.nlevels() {
            let rows = self.u_levels.level(lev);
            ctx.parallel_for("ilu_upper", rows.len(), |_, r| {
                for &iu in &rows[r] {
                    let i = iu as usize;
                    // SAFETY: as above, with dependencies pointing upward.
                    unsafe {
                        let mut s = view.get(i);
                        for k in self.u_ptr[i]..self.u_ptr[i + 1] {
                            s -= uvals[k].widen() * view.get(self.u_idx[k] as usize);
                        }
                        view.set(i, s * inv_diag[i].widen());
                    }
                }
            });
        }
    }
}

/// Scalar that can be widened to `f64` on load — the "store narrow, compute
/// wide" trick of Table 2.
pub trait WidenToF64: Copy {
    /// Widen to f64.
    fn widen(self) -> f64;
}

impl WidenToF64 for f64 {
    #[inline(always)]
    fn widen(self) -> f64 {
        self
    }
}

impl WidenToF64 for f32 {
    #[inline(always)]
    fn widen(self) -> f64 {
        self as f64
    }
}

#[allow(clippy::too_many_arguments)]
fn tri_solve<T: WidenToF64>(
    l_ptr: &[usize],
    l_idx: &[u32],
    lvals: &[T],
    u_ptr: &[usize],
    u_idx: &[u32],
    uvals: &[T],
    inv_diag: &[T],
    x: &mut [f64],
) {
    let n = inv_diag.len();
    // Forward: L y = b (unit diagonal).
    for i in 0..n {
        let mut s = x[i];
        for k in l_ptr[i]..l_ptr[i + 1] {
            s -= lvals[k].widen() * x[l_idx[k] as usize];
        }
        x[i] = s;
    }
    // Backward: U x = y.
    for i in (0..n).rev() {
        let mut s = x[i];
        for k in u_ptr[i]..u_ptr[i + 1] {
            s -= uvals[k].widen() * x[u_idx[k] as usize];
        }
        x[i] = s * inv_diag[i].widen();
    }
}

/// Level-of-fill symbolic factorization.  Returns the strictly-lower and
/// strictly-upper patterns (`(l_ptr, l_idx, u_ptr, u_idx)`), rows sorted
/// ascending.
///
/// Standard ILU(k) level rule: an entry `(i, j)` created while eliminating
/// pivot `k` gets `level(i,j) = min(level(i,j), level(i,k) + level(k,j) + 1)`
/// and is kept iff its level is `<= fill`.
fn symbolic_iluk(a: &CsrMatrix, fill: usize) -> (Vec<usize>, Vec<u32>, Vec<usize>, Vec<u32>) {
    let n = a.nrows();
    // Retained upper-pattern rows with levels, needed while factoring later rows.
    let mut urows: Vec<Vec<(u32, u16)>> = Vec::with_capacity(n);
    let mut l_ptr = Vec::with_capacity(n + 1);
    let mut l_idx: Vec<u32> = Vec::new();
    let mut u_ptr = Vec::with_capacity(n + 1);
    let mut u_idx: Vec<u32> = Vec::new();
    l_ptr.push(0);
    u_ptr.push(0);

    // Dense level workspace, stamped per row.
    let mut lev = vec![u16::MAX; n];
    let mut stamp = vec![usize::MAX; n];

    for i in 0..n {
        // Sorted active column list for this row (always kept sorted).
        let mut cols: Vec<u32> = Vec::with_capacity(a.row_cols(i).len() * (fill + 1) + 4);
        for &c in a.row_cols(i) {
            cols.push(c);
            lev[c as usize] = 0;
            stamp[c as usize] = i;
        }
        if stamp[i] != i {
            // Ensure a structural diagonal.
            cols.push(i as u32);
            lev[i] = 0;
            stamp[i] = i;
        }
        cols.sort_unstable();

        // Process pivots in ascending order; `cols` may grow behind the
        // cursor's position only with columns > current pivot, so a simple
        // index walk is safe as long as we re-scan insert positions.
        let mut ci = 0;
        while ci < cols.len() {
            let k = cols[ci] as usize;
            if k >= i {
                break;
            }
            let lev_ik = lev[k];
            // Merge U-row k.
            for &(j, lev_kj) in &urows[k] {
                let ju = j as usize;
                let new_lev = lev_ik as u32 + lev_kj as u32 + 1;
                if new_lev > fill as u32 {
                    continue;
                }
                let new_lev = new_lev as u16;
                if stamp[ju] == i {
                    if new_lev < lev[ju] {
                        lev[ju] = new_lev;
                    }
                } else {
                    stamp[ju] = i;
                    lev[ju] = new_lev;
                    // Insert keeping `cols` sorted; j > k >= cols[ci] so the
                    // insertion point is after the cursor.
                    let ins = match cols[ci + 1..].binary_search(&j) {
                        Ok(p) | Err(p) => ci + 1 + p,
                    };
                    cols.insert(ins, j);
                }
            }
            ci += 1;
        }

        // Emit the row pattern.
        let mut urow: Vec<(u32, u16)> = Vec::new();
        for &c in &cols {
            let cu = c as usize;
            match cu.cmp(&i) {
                std::cmp::Ordering::Less => l_idx.push(c),
                std::cmp::Ordering::Equal => {}
                std::cmp::Ordering::Greater => {
                    u_idx.push(c);
                    urow.push((c, lev[cu]));
                }
            }
        }
        l_ptr.push(l_idx.len());
        u_ptr.push(u_idx.len());
        urows.push(urow);
    }
    (l_ptr, l_idx, u_ptr, u_idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;
    use crate::vec_ops::norm2;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    /// A diagonally dominant random sparse matrix (1-D Laplacian-ish plus
    /// random couplings).
    fn dd_matrix(n: usize, seed: u64) -> CsrMatrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            let mut offdiag_sum = 0.0;
            for _ in 0..3 {
                let j = rng.gen_range(0..n);
                if j != i {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    t.push(i, j, v);
                    offdiag_sum += v.abs();
                }
            }
            if i > 0 {
                t.push(i, i - 1, -1.0);
                offdiag_sum += 1.0;
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                offdiag_sum += 1.0;
            }
            t.push(i, i, offdiag_sum + 1.0);
        }
        t.to_csr()
    }

    /// Tridiagonal SPD matrix: ILU(0) == exact LU (no fill exists).
    fn tridiag(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        t.to_csr()
    }

    fn residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        a.spmv(x, &mut r);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri -= bi;
        }
        norm2(&r)
    }

    #[test]
    fn ilu0_on_tridiagonal_is_exact() {
        let n = 50;
        let a = tridiag(n);
        let f = IluFactors::factor(&a, &IluOptions::with_fill(0)).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut x = vec![0.0; n];
        f.solve(&b, &mut x);
        assert!(
            residual(&a, &x, &b) < 1e-10,
            "tridiagonal ILU(0) must solve exactly"
        );
    }

    #[test]
    fn higher_fill_gives_better_preconditioner() {
        let n = 120;
        let a = dd_matrix(n, 5);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let mut errs = Vec::new();
        for k in 0..3 {
            let f = IluFactors::factor(&a, &IluOptions::with_fill(k)).unwrap();
            let mut x = vec![0.0; n];
            f.solve(&b, &mut x);
            errs.push(residual(&a, &x, &b));
        }
        assert!(
            errs[2] <= errs[0] * 1.5,
            "ILU(2) should be no worse than ILU(0): {errs:?}"
        );
    }

    #[test]
    fn fill_pattern_is_monotone_in_k() {
        let a = dd_matrix(80, 11);
        let mut last = 0;
        for k in 0..4 {
            let f = IluFactors::factor(&a, &IluOptions::with_fill(k)).unwrap();
            assert!(
                f.nnz() >= last,
                "ILU({k}) pattern must contain ILU({}) pattern",
                k - 1
            );
            last = f.nnz();
        }
    }

    #[test]
    fn ilu0_pattern_matches_matrix() {
        let a = dd_matrix(60, 3);
        let f = IluFactors::factor(&a, &IluOptions::with_fill(0)).unwrap();
        // nnz(L)+nnz(U)+n == nnz(A) when A has a full structural diagonal.
        assert_eq!(f.nnz(), a.nnz());
    }

    #[test]
    fn single_precision_storage_close_to_double() {
        let n = 100;
        let a = dd_matrix(n, 17);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let fd = IluFactors::factor(&a, &IluOptions::with_fill(1)).unwrap();
        let fs = IluFactors::factor(
            &a,
            &IluOptions {
                fill_level: 1,
                storage: PrecStorage::Single,
            },
        )
        .unwrap();
        let mut xd = vec![0.0; n];
        let mut xs = vec![0.0; n];
        fd.solve(&b, &mut xd);
        fs.solve(&b, &mut xs);
        let diff: f64 = xd
            .iter()
            .zip(&xs)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max);
        let scale = xd.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(
            diff / scale < 1e-4,
            "f32 storage should be a small perturbation: {diff}"
        );
        assert_eq!(fs.value_bytes() * 2, fd.value_bytes());
    }

    #[test]
    fn refactor_reuses_pattern() {
        let n = 60;
        let a = dd_matrix(n, 23);
        let mut f = IluFactors::factor(&a, &IluOptions::with_fill(1)).unwrap();
        let nnz = f.nnz();
        // Scale the matrix; refactor; solve should now reflect the new values.
        let mut a2 = a.clone();
        a2.scale(2.0);
        f.refactor(&a2).unwrap();
        assert_eq!(f.nnz(), nnz);
        let b = vec![1.0; n];
        let mut x2 = vec![0.0; n];
        f.solve(&b, &mut x2);
        let f1 = IluFactors::factor(&a, &IluOptions::with_fill(1)).unwrap();
        let mut x1 = vec![0.0; n];
        f1.solve(&b, &mut x1);
        for (u, v) in x1.iter().zip(&x2) {
            assert!(
                (u - 2.0 * v).abs() < 1e-12,
                "scaling A by 2 halves the solution"
            );
        }
    }

    #[test]
    fn zero_pivot_is_reported() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 0.0);
        t.push(1, 1, 1.0);
        let a = t.to_csr();
        match IluFactors::factor(&a, &IluOptions::default()) {
            Err(IluError::ZeroPivot(0)) => {}
            other => panic!("expected zero pivot at row 0, got {other:?}"),
        }
    }

    #[test]
    fn missing_structural_diagonal_is_added() {
        // Row 1 has no diagonal entry in A; the symbolic phase must add one
        // (it will be numerically filled by elimination).
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 2, 1.0);
        t.push(2, 1, 1.0);
        t.push(2, 2, 2.0);
        let a = t.to_csr();
        // ILU(1): eliminating row 1 against row 0 creates (1,1) fill.
        let f = IluFactors::factor(&a, &IluOptions::with_fill(1)).unwrap();
        assert!(f.n() == 3);
    }

    #[test]
    fn tridiagonal_levels_are_chains() {
        // Every row of a tridiagonal L depends on the previous one: the
        // forward schedule degenerates to n levels of one row each, and the
        // parallel sweep must still be correct (it just runs sequentially).
        let n = 20;
        let a = tridiag(n);
        let f = IluFactors::factor(&a, &IluOptions::with_fill(0)).unwrap();
        assert_eq!(f.level_counts(), (n, n));
    }

    #[test]
    fn diagonal_matrix_is_one_level() {
        let a = CsrMatrix::identity(8);
        let f = IluFactors::factor(&a, &IluOptions::with_fill(0)).unwrap();
        assert_eq!(f.level_counts(), (1, 1));
    }

    #[test]
    fn level_schedule_orders_dependencies() {
        let n = 120;
        let a = dd_matrix(n, 41);
        let f = IluFactors::factor(&a, &IluOptions::with_fill(1)).unwrap();
        // Forward: every dependency of a row must sit in an earlier level.
        let mut level_of = vec![usize::MAX; n];
        for lev in 0..f.l_levels.nlevels() {
            for &i in f.l_levels.level(lev) {
                level_of[i as usize] = lev;
            }
        }
        for i in 0..n {
            for k in f.l_ptr[i]..f.l_ptr[i + 1] {
                let j = f.l_idx[k] as usize;
                assert!(level_of[j] < level_of[i], "dep ({i},{j}) not ordered");
            }
        }
    }

    #[test]
    fn parallel_solve_is_bitwise_sequential() {
        use crate::par::ParCtx;
        for (n, seed, fill) in [(150usize, 19u64, 0usize), (300, 23, 1)] {
            let a = dd_matrix(n, seed);
            for storage in [PrecStorage::Double, PrecStorage::Single] {
                let f = IluFactors::factor(
                    &a,
                    &IluOptions {
                        fill_level: fill,
                        storage,
                    },
                )
                .unwrap();
                let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
                let mut xs = vec![0.0; n];
                f.solve(&b, &mut xs);
                for nthreads in [1usize, 2, 3, 8, 301] {
                    let mut xp = vec![0.0; n];
                    f.solve_par(&b, &mut xp, &ParCtx::new(nthreads));
                    assert_eq!(xs, xp, "n={n} fill={fill} nthreads={nthreads}");
                }
            }
        }
    }

    #[test]
    fn solve_matches_dense_reference_high_fill() {
        // With fill >= n, ILU == complete LU, so the solve is exact.
        let n = 30;
        let a = dd_matrix(n, 31);
        let f = IluFactors::factor(&a, &IluOptions::with_fill(n)).unwrap();
        let xtrue: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xtrue, &mut b);
        let mut x = vec![0.0; n];
        f.solve(&b, &mut x);
        for (u, v) in x.iter().zip(&xtrue) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }
}
