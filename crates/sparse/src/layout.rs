//! Field-variable storage layouts (Section 2.1.1 of the paper).
//!
//! With `m` unknowns per mesh point (4 incompressible: u,v,w,p; 5
//! compressible: rho,u,v,w,E) and `N` points, two orderings of the global
//! unknown vector are compared:
//!
//! * **Interlaced** — `u1,v1,w1,p1, u2,v2,w2,p2, ...`: the unknowns at a grid
//!   point are adjacent.  The Jacobian of a PDE discretization then has
//!   bandwidth `~ m * beta_mesh` (small), the cache working set is small, and
//!   the memory reference stream of SpMV is closely spaced.
//! * **Segregated** ("noninterlaced") — `u1,u2,...,v1,v2,...`: good for
//!   vector machines, but couples unknowns `~N` apart, producing a matrix of
//!   bandwidth close to `N` and a large working set (Eq. 1 vs Eq. 2).
//!
//! The helpers here convert vectors between the layouts and produce the
//! corresponding unknown permutations so the *same* physical Jacobian can be
//! materialized in either ordering.

/// Which global unknown ordering a vector / matrix uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldLayout {
    /// Unknowns at a grid point stored adjacently (cache-friendly).
    Interlaced,
    /// Each field stored as a contiguous stretch (vector-machine layout).
    Segregated,
}

/// Global index of component `c` at point `p`.
#[inline]
pub fn unknown_index(
    layout: FieldLayout,
    npoints: usize,
    ncomp: usize,
    p: usize,
    c: usize,
) -> usize {
    debug_assert!(p < npoints && c < ncomp);
    match layout {
        FieldLayout::Interlaced => p * ncomp + c,
        FieldLayout::Segregated => c * npoints + p,
    }
}

/// Permutation taking *segregated* unknown indices to *interlaced* ones
/// (`perm[seg_index] = interlaced_index`), suitable for
/// [`crate::csr::CsrMatrix::permute_symmetric`].
pub fn segregated_to_interlaced_perm(npoints: usize, ncomp: usize) -> Vec<usize> {
    let n = npoints * ncomp;
    let mut perm = vec![0usize; n];
    for c in 0..ncomp {
        for p in 0..npoints {
            perm[c * npoints + p] = p * ncomp + c;
        }
    }
    perm
}

/// Permutation taking interlaced indices to segregated ones (the inverse of
/// [`segregated_to_interlaced_perm`]).
pub fn interlaced_to_segregated_perm(npoints: usize, ncomp: usize) -> Vec<usize> {
    let n = npoints * ncomp;
    let mut perm = vec![0usize; n];
    for p in 0..npoints {
        for c in 0..ncomp {
            perm[p * ncomp + c] = c * npoints + p;
        }
    }
    perm
}

/// Reorder a segregated vector into interlaced order.
pub fn to_interlaced(x_seg: &[f64], npoints: usize, ncomp: usize, out: &mut [f64]) {
    assert_eq!(x_seg.len(), npoints * ncomp);
    assert_eq!(out.len(), npoints * ncomp);
    for c in 0..ncomp {
        for p in 0..npoints {
            out[p * ncomp + c] = x_seg[c * npoints + p];
        }
    }
}

/// Reorder an interlaced vector into segregated order.
pub fn to_segregated(x_int: &[f64], npoints: usize, ncomp: usize, out: &mut [f64]) {
    assert_eq!(x_int.len(), npoints * ncomp);
    assert_eq!(out.len(), npoints * ncomp);
    for p in 0..npoints {
        for c in 0..ncomp {
            out[c * npoints + p] = x_int[p * ncomp + c];
        }
    }
}

/// Apply a *point* permutation (old point -> new point) to the unknown
/// vector permutation of the given layout.  Used to lift an RCM vertex
/// ordering to the full unknown space.
pub fn lift_point_permutation(
    layout: FieldLayout,
    point_perm: &[usize],
    ncomp: usize,
) -> Vec<usize> {
    let npoints = point_perm.len();
    let mut perm = vec![0usize; npoints * ncomp];
    for p in 0..npoints {
        for c in 0..ncomp {
            let old = unknown_index(layout, npoints, ncomp, p, c);
            let new = unknown_index(layout, npoints, ncomp, point_perm[p], c);
            perm[old] = new;
        }
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_layouts_disagree_as_expected() {
        // 3 points, 2 comps. Interlaced: p0c0 p0c1 p1c0 p1c1 p2c0 p2c1.
        assert_eq!(unknown_index(FieldLayout::Interlaced, 3, 2, 1, 1), 3);
        assert_eq!(unknown_index(FieldLayout::Segregated, 3, 2, 1, 1), 4);
    }

    #[test]
    fn perms_are_inverse_bijections() {
        let npoints = 5;
        let ncomp = 4;
        let s2i = segregated_to_interlaced_perm(npoints, ncomp);
        let i2s = interlaced_to_segregated_perm(npoints, ncomp);
        for k in 0..npoints * ncomp {
            assert_eq!(i2s[s2i[k]], k);
            assert_eq!(s2i[i2s[k]], k);
        }
    }

    #[test]
    fn vector_roundtrip() {
        let npoints = 4;
        let ncomp = 3;
        let x: Vec<f64> = (0..12).map(|v| v as f64).collect();
        let mut inter = vec![0.0; 12];
        let mut back = vec![0.0; 12];
        to_interlaced(&x, npoints, ncomp, &mut inter);
        to_segregated(&inter, npoints, ncomp, &mut back);
        assert_eq!(x, back);
        // Spot check: segregated x[c*N+p]; interlaced [p*m+c].
        // c=1,p=2 => seg idx 6 => inter idx 2*3+1=7.
        assert_eq!(inter[7], x[6]);
    }

    #[test]
    fn lifted_point_perm_moves_all_components_together() {
        let point_perm = vec![2usize, 0, 1]; // old->new
        let perm = lift_point_permutation(FieldLayout::Interlaced, &point_perm, 2);
        // point 0 (unknowns 0,1) moves to point 2 (unknowns 4,5).
        assert_eq!(perm[0], 4);
        assert_eq!(perm[1], 5);
        // Segregated: point 0 comps at 0 and 3 move to 2 and 5.
        let perm_s = lift_point_permutation(FieldLayout::Segregated, &point_perm, 2);
        assert_eq!(perm_s[0], 2);
        assert_eq!(perm_s[3], 5);
    }

    #[test]
    fn lifted_perm_is_bijection() {
        let point_perm = vec![3usize, 1, 0, 2];
        for layout in [FieldLayout::Interlaced, FieldLayout::Segregated] {
            let perm = lift_point_permutation(layout, &point_perm, 5);
            let mut seen = vec![false; perm.len()];
            for &v in &perm {
                assert!(!seen[v]);
                seen[v] = true;
            }
        }
    }
}
