//! Sparse linear algebra kernels for the PETSc-FUN3D reproduction.
//!
//! This crate provides the storage formats and kernels whose memory behaviour
//! the paper analyzes:
//!
//! * [`csr::CsrMatrix`] — compressed sparse row storage (PETSc `AIJ` analogue),
//!   the format used by the *non-blocked* variants in Table 1.
//! * [`bcsr::BcsrMatrix`] — block compressed sparse row storage (PETSc `BAIJ`
//!   analogue) exploiting the small dense blocks that arise when the field
//!   variables at a grid point are interlaced ("structural blocking").
//! * [`layout`] — interlaced vs. segregated ("noninterlaced") vector layouts
//!   and conversions between them (Section 2.1.1 of the paper).
//! * [`ilu`] — level-of-fill incomplete factorization ILU(k) with forward and
//!   backward triangular solves, including the *single-precision storage /
//!   double-precision arithmetic* variant of Section 2.2 (Table 2).
//! * [`block_ilu`] — point-block ILU(0) on BCSR (PETSc `PCILU`+`BAIJ`), the
//!   factorization PETSc-FUN3D actually applies once blocking is on.
//! * [`blockspec`] — micro-kernel tier selection (`FUN3D_BLOCK_KERNEL`) and
//!   the repeated-block-structure analysis pass that hashes, deduplicates,
//!   and batches identical row patterns so one unrolled kernel can stream
//!   through whole runs of rows without per-row index loads.
//! * [`dense`] — small dense block helpers (LU with partial pivoting) used by
//!   the block preconditioners.
//! * [`vec_ops`] — the BLAS-1 style vector kernels (dot, axpy, norms) that the
//!   Krylov solvers are built from.
//! * [`par`] — the shared-memory execution context ([`par::ParCtx`]) behind
//!   the `_par` variants of the hot kernels (SpMV, BLAS-1, level-scheduled
//!   triangular solves), mirroring the paper's SMP worksharing experiments.
//! * [`profile`] — the global region profiler behind `fun3d-profile`:
//!   per-thread busy time, fork/join wall time, and load-imbalance
//!   accounting for every labeled parallel region (the measured analogue of
//!   the paper's Table 3 implementation-efficiency decomposition).
//!
//! All kernels are written so that their memory reference streams mirror the
//! Fortran/C kernels discussed in the paper; the `fun3d-memmodel` crate
//! replays those streams through a cache/TLB simulator.

pub mod bcsr;
pub mod block_ilu;
pub mod blockspec;
pub mod csr;
pub mod dense;
pub mod ilu;
pub mod layout;
pub mod par;
pub mod profile;
pub mod triplet;
pub mod vec_ops;

pub use bcsr::BcsrMatrix;
pub use block_ilu::BlockIluFactors;
pub use blockspec::{BlockKernel, BlockStructure, BlockStructureStats};
pub use csr::CsrMatrix;
pub use ilu::{IluFactors, IluOptions, PrecStorage};
pub use par::ParCtx;
pub use triplet::TripletMatrix;
