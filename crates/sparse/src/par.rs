//! Shared-memory parallel execution context for the hot kernels.
//!
//! The paper's SMP experiments (Table 5) thread the flux kernel with
//! OpenMP-style worksharing: each thread owns a contiguous chunk of the
//! iteration space, writes land in private or disjoint storage, and
//! reductions gather per-thread partials *in thread order* so results are
//! deterministic for a fixed thread count.  [`ParCtx`] packages that model
//! so the SpMV, BLAS-1, flux-residual and triangular-solve kernels can all
//! share one partitioning scheme.
//!
//! Determinism contract: every helper here computes with the same chunk
//! boundaries whether the chunks execute on worker threads or (for small
//! `n`) on the calling thread, and reductions always combine partials in
//! ascending thread order.  A result therefore depends only on the inputs
//! and `nthreads`, never on scheduling.
//!
//! Every helper takes a stable `&'static str` region label.  When the
//! global [`crate::profile`] layer is enabled, each fork/join records its
//! wall time and per-thread busy times under that label; when disabled (the
//! default) the label costs one relaxed atomic load and the execution path
//! is the unprofiled one above — bitwise identical results either way.

use crate::profile;
use std::marker::PhantomData;
use std::ops::Range;
use std::time::Instant;

/// Below this many work items the helpers run their chunks on the calling
/// thread instead of spawning: a thread spawn costs ~10µs, which dwarfs a
/// small kernel.  The chunking is identical either way, so the numerics do
/// not change — only where the chunks execute.
const PAR_MIN_N: usize = 4096;

/// A shared-memory parallel context: a thread count plus the contiguous
/// block partitioning derived from it.
///
/// `ParCtx` is `Copy` and cheap to pass by value; it holds no thread pool.
/// Worker threads are spawned per call with `std::thread::scope`, matching
/// the fork/join worksharing of the paper's OpenMP loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParCtx {
    nthreads: usize,
}

impl Default for ParCtx {
    fn default() -> Self {
        Self::seq()
    }
}

impl ParCtx {
    /// A context with `nthreads` workers (clamped to at least 1).
    pub fn new(nthreads: usize) -> Self {
        Self {
            nthreads: nthreads.max(1),
        }
    }

    /// The sequential context: one thread, every helper degenerates to the
    /// plain loop.
    pub fn seq() -> Self {
        Self { nthreads: 1 }
    }

    /// Read the thread count from `FUN3D_THREADS` (defaults to 1).
    pub fn from_env() -> Self {
        let n = std::env::var("FUN3D_THREADS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(1);
        Self::new(n)
    }

    /// Number of worker threads.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// The contiguous sub-range of `0..n` owned by thread `t`: `n / nthreads`
    /// items each, with the remainder spread one-per-thread over the lowest
    /// thread indices.  Ranges are ascending, disjoint, and cover `0..n`
    /// exactly; when `nthreads > n` the trailing threads get empty ranges.
    ///
    /// # Panics
    /// Panics if `t >= nthreads` — an out-of-range index would otherwise
    /// yield a range past the end of the data.
    pub fn chunk(&self, n: usize, t: usize) -> Range<usize> {
        assert!(
            t < self.nthreads,
            "chunk: thread index {t} out of range for {} threads",
            self.nthreads
        );
        let per = n / self.nthreads;
        let rem = n % self.nthreads;
        let start = t * per + t.min(rem);
        let len = per + usize::from(t < rem);
        start..start + len
    }

    fn should_spawn(&self, n: usize) -> bool {
        self.nthreads > 1 && n >= PAR_MIN_N
    }

    /// Run `body(t, range)` over each thread's chunk of `0..n`.  Empty
    /// chunks (possible when `nthreads > n`) are skipped entirely — no
    /// thread is spawned and `body` is not called for them.  `label` names
    /// the region in [`crate::profile`] output.
    pub fn parallel_for<F>(&self, label: &'static str, n: usize, body: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        if profile::is_enabled() {
            return self.parallel_for_profiled(label, n, body);
        }
        if !self.should_spawn(n) {
            for t in 0..self.nthreads {
                let r = self.chunk(n, t);
                if !r.is_empty() {
                    body(t, r);
                }
            }
            return;
        }
        std::thread::scope(|s| {
            for t in 0..self.nthreads {
                let r = self.chunk(n, t);
                if r.is_empty() {
                    continue;
                }
                let body = &body;
                s.spawn(move || body(t, r));
            }
        });
    }

    /// [`Self::parallel_for`] with per-thread busy timing: same chunks, same
    /// spawn decision, plus one `Instant` pair around each body call and one
    /// around the whole fork/join.
    fn parallel_for_profiled<F>(&self, label: &'static str, n: usize, body: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        let wall0 = Instant::now();
        let mut busy = vec![0.0f64; self.nthreads];
        if !self.should_spawn(n) {
            for t in 0..self.nthreads {
                let r = self.chunk(n, t);
                if !r.is_empty() {
                    let b0 = Instant::now();
                    body(t, r);
                    busy[t] = b0.elapsed().as_secs_f64();
                }
            }
        } else {
            let view = DisjointSliceMut::new(&mut busy);
            std::thread::scope(|s| {
                for t in 0..self.nthreads {
                    let r = self.chunk(n, t);
                    if r.is_empty() {
                        continue;
                    }
                    let body = &body;
                    let view = &view;
                    s.spawn(move || {
                        let b0 = Instant::now();
                        body(t, r);
                        // SAFETY: each thread writes only its own slot `t`.
                        unsafe { view.set(t, b0.elapsed().as_secs_f64()) };
                    });
                }
            });
        }
        profile::record(label, self.nthreads, wall0.elapsed().as_secs_f64(), &busy);
    }

    /// Map each thread's chunk of `0..n` to a value and return the values in
    /// ascending thread order — the ordered-partials half of the determinism
    /// contract.  `f` *is* called for empty chunks so the result always has
    /// `nthreads` entries (an empty chunk contributes its identity value).
    /// `label` names the region in [`crate::profile`] output.
    pub fn map_chunks<R, F>(&self, label: &'static str, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        if profile::is_enabled() {
            return self.map_chunks_profiled(label, n, f);
        }
        if !self.should_spawn(n) {
            return (0..self.nthreads).map(|t| f(t, self.chunk(n, t))).collect();
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.nthreads)
                .map(|t| {
                    let r = self.chunk(n, t);
                    let f = &f;
                    s.spawn(move || f(t, r))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel_for worker panicked"))
                .collect()
        })
    }

    /// [`Self::map_chunks`] with per-thread busy timing.
    fn map_chunks_profiled<R, F>(&self, label: &'static str, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        let wall0 = Instant::now();
        let mut busy = vec![0.0f64; self.nthreads];
        let out: Vec<R> = if !self.should_spawn(n) {
            (0..self.nthreads)
                .map(|t| {
                    let b0 = Instant::now();
                    let v = f(t, self.chunk(n, t));
                    busy[t] = b0.elapsed().as_secs_f64();
                    v
                })
                .collect()
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..self.nthreads)
                    .map(|t| {
                        let r = self.chunk(n, t);
                        let f = &f;
                        s.spawn(move || {
                            let b0 = Instant::now();
                            let v = f(t, r);
                            (v, b0.elapsed().as_secs_f64())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .zip(busy.iter_mut())
                    .map(|(h, slot)| {
                        let (v, b) = h.join().expect("parallel_for worker panicked");
                        *slot = b;
                        v
                    })
                    .collect()
            })
        };
        profile::record(label, self.nthreads, wall0.elapsed().as_secs_f64(), &busy);
        out
    }

    /// Partition `data` by thread chunk and run `body(t, units, sub)` on
    /// each piece, where `units` is the chunk of `0..data.len() /
    /// granularity` and `sub` the matching sub-slice.  `granularity` is the
    /// number of elements per work unit (1 for point vectors, the block size
    /// `b` for BCSR block rows).  `label` names the region in
    /// [`crate::profile`] output.
    ///
    /// # Panics
    /// Panics if `granularity` is zero or does not divide `data.len()`.
    pub fn parallel_for_slices<T, F>(
        &self,
        label: &'static str,
        data: &mut [T],
        granularity: usize,
        body: F,
    ) where
        T: Send,
        F: Fn(usize, Range<usize>, &mut [T]) + Sync,
    {
        assert!(granularity > 0, "parallel_for_slices: zero granularity");
        assert_eq!(
            data.len() % granularity,
            0,
            "parallel_for_slices: granularity {granularity} does not divide length {}",
            data.len()
        );
        let n = data.len() / granularity;
        if profile::is_enabled() {
            return self.parallel_for_slices_profiled(label, data, granularity, n, body);
        }
        if !self.should_spawn(n) {
            for t in 0..self.nthreads {
                let r = self.chunk(n, t);
                if !r.is_empty() {
                    let sub = &mut data[r.start * granularity..r.end * granularity];
                    body(t, r, sub);
                }
            }
            return;
        }
        std::thread::scope(|s| {
            // Chunks are ascending and contiguous, so peeling sub-slices off
            // the front in thread order partitions `data` exactly.
            let mut rest = data;
            for t in 0..self.nthreads {
                let r = self.chunk(n, t);
                if r.is_empty() {
                    continue;
                }
                let (sub, tail) = std::mem::take(&mut rest).split_at_mut(r.len() * granularity);
                rest = tail;
                let body = &body;
                s.spawn(move || body(t, r, sub));
            }
        });
    }

    /// [`Self::parallel_for_slices`] with per-thread busy timing.
    fn parallel_for_slices_profiled<T, F>(
        &self,
        label: &'static str,
        data: &mut [T],
        granularity: usize,
        n: usize,
        body: F,
    ) where
        T: Send,
        F: Fn(usize, Range<usize>, &mut [T]) + Sync,
    {
        let wall0 = Instant::now();
        let mut busy = vec![0.0f64; self.nthreads];
        if !self.should_spawn(n) {
            for t in 0..self.nthreads {
                let r = self.chunk(n, t);
                if !r.is_empty() {
                    let sub = &mut data[r.start * granularity..r.end * granularity];
                    let b0 = Instant::now();
                    body(t, r, sub);
                    busy[t] = b0.elapsed().as_secs_f64();
                }
            }
        } else {
            let view = DisjointSliceMut::new(&mut busy);
            std::thread::scope(|s| {
                let mut rest = data;
                for t in 0..self.nthreads {
                    let r = self.chunk(n, t);
                    if r.is_empty() {
                        continue;
                    }
                    let (sub, tail) = std::mem::take(&mut rest).split_at_mut(r.len() * granularity);
                    rest = tail;
                    let body = &body;
                    let view = &view;
                    s.spawn(move || {
                        let b0 = Instant::now();
                        body(t, r, sub);
                        // SAFETY: each thread writes only its own slot `t`.
                        unsafe { view.set(t, b0.elapsed().as_secs_f64()) };
                    });
                }
            });
        }
        profile::record(label, self.nthreads, wall0.elapsed().as_secs_f64(), &busy);
    }
}

/// A shared, writable view of a slice for kernels whose threads write
/// provably disjoint index sets — the level-scheduled triangular sweeps,
/// where every row in a level writes only its own `x[i]` and reads entries
/// finalized in earlier levels.
///
/// All access is `unsafe`: the *caller* carries the disjointness proof that
/// the borrow checker cannot see.
pub struct DisjointSliceMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: sharing the view across threads is sound as long as every access
// honors the per-call contracts below (disjoint writes, no read/write races).
unsafe impl<T: Send + Sync> Sync for DisjointSliceMut<'_, T> {}
unsafe impl<T: Send> Send for DisjointSliceMut<'_, T> {}

impl<'a, T> DisjointSliceMut<'a, T> {
    /// Wrap `data`, exclusively borrowing it for the view's lifetime.
    pub fn new(data: &'a mut [T]) -> Self {
        Self {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read `[i]`.
    ///
    /// # Safety
    /// `i < len()`, and no thread may be writing index `i` concurrently.
    pub unsafe fn get(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) }
    }

    /// Write `[i] = v`.
    ///
    /// # Safety
    /// `i < len()`, and no other thread may access index `i` concurrently.
    pub unsafe fn set(&self, i: usize, v: T) {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) = v };
    }

    /// A mutable view of `r` — used for block rows, where one thread owns a
    /// contiguous run of `b` entries.
    ///
    /// # Safety
    /// `r` must be in bounds and no other thread may access any index in
    /// `r` concurrently.
    #[allow(clippy::mut_from_ref)] // the disjointness contract is the caller's
    pub unsafe fn slice_mut(&self, r: Range<usize>) -> &mut [T] {
        debug_assert!(r.end <= self.len);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(r.start), r.len()) }
    }

    /// A shared view of `r`.
    ///
    /// # Safety
    /// `r` must be in bounds and no thread may write any index in `r`
    /// concurrently.
    pub unsafe fn slice(&self, r: Range<usize>) -> &[T] {
        debug_assert!(r.end <= self.len);
        unsafe { std::slice::from_raw_parts(self.ptr.add(r.start), r.len()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_cover_exactly_with_remainder() {
        for nthreads in 1..9 {
            let ctx = ParCtx::new(nthreads);
            for n in [0usize, 1, 2, 3, 7, 100, 101] {
                let mut next = 0;
                for t in 0..nthreads {
                    let r = ctx.chunk(n, t);
                    assert_eq!(r.start, next, "n={n} nthreads={nthreads} t={t}");
                    next = r.end;
                }
                assert_eq!(next, n);
                // Remainder is spread one-per-thread over the low indices:
                // sizes differ by at most one and are non-increasing.
                let sizes: Vec<usize> = (0..nthreads).map(|t| ctx.chunk(n, t).len()).collect();
                for w in sizes.windows(2) {
                    assert!(w[0] >= w[1] && w[0] - w[1] <= 1, "sizes {sizes:?}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chunk_rejects_thread_index_past_team() {
        ParCtx::new(2).chunk(10, 2);
    }

    #[test]
    fn more_threads_than_items_yields_empty_tails() {
        let ctx = ParCtx::new(8);
        let sizes: Vec<usize> = (0..8).map(|t| ctx.chunk(3, t).len()).collect();
        assert_eq!(sizes, [1, 1, 1, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn parallel_for_visits_each_index_once() {
        for nthreads in [1, 3, 8] {
            let ctx = ParCtx::new(nthreads);
            for n in [0usize, 5, PAR_MIN_N + 17] {
                let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                ctx.parallel_for("test_for", n, |_, r| {
                    for i in r {
                        counts[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
            }
        }
    }

    #[test]
    fn map_chunks_is_ordered_and_spawn_invariant() {
        // The partials must come back in thread order, and the values must
        // not depend on whether the chunks actually ran on worker threads.
        let n = PAR_MIN_N + 123;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let ctx = ParCtx::new(4);
        let threaded = ctx.map_chunks("test_map", n, |_, r| x[r].iter().sum::<f64>());
        let inline: Vec<f64> = (0..4).map(|t| x[ctx.chunk(n, t)].iter().sum()).collect();
        assert_eq!(threaded, inline);
    }

    #[test]
    fn parallel_for_slices_partitions_writes() {
        for nthreads in [1, 2, 5] {
            for granularity in [1usize, 3] {
                let n_units = PAR_MIN_N + 7;
                let mut data = vec![0.0f64; n_units * granularity];
                let ctx = ParCtx::new(nthreads);
                ctx.parallel_for_slices("test_slices", &mut data, granularity, |t, units, sub| {
                    assert_eq!(sub.len(), units.len() * granularity);
                    for v in sub {
                        *v += (t + 1) as f64;
                    }
                });
                // Every element written exactly once, by its owning thread.
                for (i, v) in data.iter().enumerate() {
                    let unit = i / granularity;
                    let owner = (0..nthreads)
                        .find(|&t| ctx.chunk(n_units, t).contains(&unit))
                        .unwrap();
                    assert_eq!(*v, (owner + 1) as f64);
                }
            }
        }
    }

    /// Every profiled invariant in one sweep: for each helper shape, at team
    /// sizes straddling `n` and the spawn threshold, the recorded region
    /// satisfies `sum(busy) + join_wait == nthreads * wall` (exact, by
    /// construction), `busy_max <= wall + eps`, and `join_wait >= -eps`.
    #[test]
    fn profiled_regions_honor_busy_wall_identity() {
        let _g = crate::profile::test_lock();
        crate::profile::set_enabled(true);
        crate::profile::reset();
        for nthreads in [1usize, 2, 5] {
            let ctx = ParCtx::new(nthreads);
            for n in [3usize, PAR_MIN_N + 31] {
                let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
                let mut y = vec![0.0f64; n];
                ctx.parallel_for("id_for", n, |_, r| {
                    for i in r {
                        std::hint::black_box(x[i].sqrt());
                    }
                });
                let sums = ctx.map_chunks("id_map", n, |_, r| x[r].iter().sum::<f64>());
                assert_eq!(sums.len(), nthreads);
                ctx.parallel_for_slices("id_slices", &mut y, 1, |_, r, sub| {
                    for (v, i) in sub.iter_mut().zip(r) {
                        *v = x[i] * 2.0;
                    }
                });
            }
        }
        let stats = crate::profile::drain();
        crate::profile::set_enabled(false);
        let labels: Vec<&str> = stats.iter().map(|s| s.label).collect();
        for want in ["id_for", "id_map", "id_slices"] {
            assert!(labels.contains(&want), "missing region {want}: {labels:?}");
        }
        const EPS: f64 = 1e-6;
        for s in &stats {
            assert_eq!(s.invocations, 2, "{s:?}");
            assert!(s.wall_s >= 0.0, "{s:?}");
            assert!(s.busy_s.len() <= s.nthreads, "{s:?}");
            let sum: f64 = s.busy_s.iter().sum();
            let team_seconds = s.nthreads as f64 * s.wall_s;
            assert!(
                (sum + s.join_wait_s() - team_seconds).abs() <= 1e-12,
                "identity violated: {s:?}"
            );
            assert!(s.busy_max_s() <= s.wall_s + EPS, "busy exceeds wall: {s:?}");
            assert!(s.join_wait_s() >= -EPS * s.nthreads as f64, "{s:?}");
            assert!(s.imbalance() >= 1.0 - 1e-12, "{s:?}");
        }
    }

    /// Profiling must not change what the helpers compute: same values from
    /// `map_chunks`, same writes from `parallel_for_slices`, bit for bit.
    #[test]
    fn profiling_is_bitwise_invisible_to_results() {
        let _g = crate::profile::test_lock();
        let n = PAR_MIN_N + 257;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let ctx = ParCtx::new(4);
        crate::profile::set_enabled(false);
        let off = ctx.map_chunks("bitwise_map", n, |_, r| x[r].iter().sum::<f64>());
        let mut y_off = vec![0.0f64; n];
        ctx.parallel_for_slices("bitwise_slices", &mut y_off, 1, |_, r, sub| {
            for (v, i) in sub.iter_mut().zip(r) {
                *v = x[i] * 3.0 + 1.0;
            }
        });
        crate::profile::set_enabled(true);
        crate::profile::reset();
        let on = ctx.map_chunks("bitwise_map", n, |_, r| x[r].iter().sum::<f64>());
        let mut y_on = vec![0.0f64; n];
        ctx.parallel_for_slices("bitwise_slices", &mut y_on, 1, |_, r, sub| {
            for (v, i) in sub.iter_mut().zip(r) {
                *v = x[i] * 3.0 + 1.0;
            }
        });
        crate::profile::set_enabled(false);
        crate::profile::reset();
        assert_eq!(off, on);
        assert_eq!(y_off, y_on);
    }

    #[test]
    fn disjoint_slice_round_trips() {
        let mut data = vec![0.0f64; 64];
        let view = DisjointSliceMut::new(&mut data);
        let ctx = ParCtx::new(4);
        ctx.parallel_for("test_disjoint", 64, |_, r| {
            for i in r {
                // SAFETY: chunks are disjoint, each index written once.
                unsafe { view.set(i, i as f64) };
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as f64));
    }
}
