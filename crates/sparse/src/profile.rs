//! `fun3d-profile`: a process-global, low-overhead region profiler for the
//! shared-memory parallel kernels.
//!
//! The paper's Table 3 decomposes parallel efficiency into an algorithmic
//! factor and an implementation factor, and charges the implementation side
//! to synchronization, scatter, and load imbalance.  This module measures
//! the shared-memory half of that story: every labeled [`ParCtx`] region
//! records its fork/join wall time plus each thread's busy time, aggregated
//! per `(label, nthreads)` into [`RegionStats`] — from which max/mean busy
//! time (imbalance factor) and join-wait (idle) time follow directly.
//!
//! Accounting identity, by construction and pinned by tests:
//!
//! ```text
//! sum_t busy[t] + join_wait = nthreads * wall
//! ```
//!
//! so per-thread busy times always sum to within the join-wait of the
//! team-seconds the region occupied.
//!
//! The profiler is **off by default** and costs exactly one relaxed atomic
//! load per region when off; the chunk partitioning is identical either
//! way, so profiling can never perturb results — only add timing.  State is
//! process-global (not per-[`ParCtx`]) so the context stays `Copy` and the
//! hot kernels need no new plumbing; callers that interleave independent
//! measurements should [`reset`] or [`drain`] between them.
//!
//! [`ParCtx`]: crate::par::ParCtx

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

type Table = BTreeMap<(&'static str, usize), RegionAccum>;

fn table() -> &'static Mutex<Table> {
    static TABLE: OnceLock<Mutex<Table>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

#[derive(Debug, Clone, Default)]
struct RegionAccum {
    invocations: u64,
    wall_s: f64,
    busy_s: Vec<f64>,
}

/// Aggregated timings for one region label at one team size.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionStats {
    /// The stable label the kernel passed to its `ParCtx` helper.
    pub label: &'static str,
    /// Team size the region ran with (regions are keyed by `(label,
    /// nthreads)` so thread sweeps stay separable).
    pub nthreads: usize,
    /// Fork/join invocations aggregated here.
    pub invocations: u64,
    /// Total fork-to-join wall time across invocations, seconds.
    pub wall_s: f64,
    /// Per-thread busy seconds, indexed by thread id; a thread whose chunks
    /// were always empty stays at zero (pure imbalance).
    pub busy_s: Vec<f64>,
}

impl RegionStats {
    /// Busiest thread's total seconds.
    pub fn busy_max_s(&self) -> f64 {
        self.busy_s.iter().copied().fold(0.0, f64::max)
    }

    /// Mean busy seconds over all `nthreads` team slots (idle threads count:
    /// an unused slot *is* imbalance).
    pub fn busy_mean_s(&self) -> f64 {
        if self.nthreads == 0 {
            return 0.0;
        }
        self.busy_s.iter().sum::<f64>() / self.nthreads as f64
    }

    /// Load imbalance factor `busy_max / busy_mean` (1.0 = perfectly
    /// balanced; defined as 1.0 when the region did no measurable work).
    pub fn imbalance(&self) -> f64 {
        let mean = self.busy_mean_s();
        if mean > 0.0 {
            self.busy_max_s() / mean
        } else {
            1.0
        }
    }

    /// Idle team-seconds: `nthreads * wall - sum(busy)`.  This is the time
    /// threads spent waiting at the join (plus fork latency), the
    /// synchronization term of the paper's Table 3.  Can be a hair negative
    /// from timer granularity; not clamped so the accounting identity stays
    /// exact.
    pub fn join_wait_s(&self) -> f64 {
        self.nthreads as f64 * self.wall_s - self.busy_s.iter().sum::<f64>()
    }
}

/// Turn region profiling on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether region profiling is currently on.  This is the entire hot-path
/// cost of a disabled profiler.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable profiling when the `FUN3D_PROFILE` environment variable is set to
/// anything but `0` or the empty string; returns the resulting state.
pub fn enable_from_env() -> bool {
    if let Ok(v) = std::env::var("FUN3D_PROFILE") {
        let v = v.trim();
        if !v.is_empty() && v != "0" {
            set_enabled(true);
        }
    }
    is_enabled()
}

/// Discard all accumulated region data (leaves the enabled flag alone).
pub fn reset() {
    table().lock().unwrap().clear();
}

/// Snapshot the accumulated regions, sorted by `(label, nthreads)`.
pub fn snapshot() -> Vec<RegionStats> {
    table()
        .lock()
        .unwrap()
        .iter()
        .map(|(&(label, nthreads), acc)| RegionStats {
            label,
            nthreads,
            invocations: acc.invocations,
            wall_s: acc.wall_s,
            busy_s: acc.busy_s.clone(),
        })
        .collect()
}

/// [`snapshot`] then [`reset`] atomically.
pub fn drain() -> Vec<RegionStats> {
    let mut tab = table().lock().unwrap();
    let out = tab
        .iter()
        .map(|(&(label, nthreads), acc)| RegionStats {
            label,
            nthreads,
            invocations: acc.invocations,
            wall_s: acc.wall_s,
            busy_s: acc.busy_s.clone(),
        })
        .collect();
    tab.clear();
    out
}

/// Fold one fork/join invocation into the table.  `busy[t]` is thread `t`'s
/// busy seconds this invocation (zero for threads with empty chunks).
pub fn record(label: &'static str, nthreads: usize, wall_s: f64, busy: &[f64]) {
    let mut tab = table().lock().unwrap();
    let acc = tab.entry((label, nthreads)).or_default();
    acc.invocations += 1;
    acc.wall_s += wall_s;
    if acc.busy_s.len() < busy.len() {
        acc.busy_s.resize(busy.len(), 0.0);
    }
    for (a, b) in acc.busy_s.iter_mut().zip(busy) {
        *a += b;
    }
}

/// The profiler is process-global; tests that enable it must serialize on
/// this lock so concurrent test threads cannot interleave enable/reset.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    use super::test_lock as lock;

    #[test]
    fn disabled_by_default_and_toggles() {
        let _g = lock();
        set_enabled(false);
        assert!(!is_enabled());
        set_enabled(true);
        assert!(is_enabled());
        set_enabled(false);
    }

    #[test]
    fn record_aggregates_by_label_and_team() {
        let _g = lock();
        reset();
        record("k", 2, 1.0, &[0.6, 0.2]);
        record("k", 2, 1.0, &[0.4, 0.8]);
        record("k", 4, 2.0, &[0.5, 0.5, 0.5, 0.5]);
        record("other", 2, 0.5, &[0.1, 0.1]);
        let stats = drain();
        assert_eq!(stats.len(), 3);
        let k2 = &stats[0];
        assert_eq!((k2.label, k2.nthreads, k2.invocations), ("k", 2, 2));
        assert!((k2.wall_s - 2.0).abs() < 1e-12);
        assert_eq!(k2.busy_s, vec![1.0, 1.0]);
        assert_eq!((stats[1].label, stats[1].nthreads), ("k", 4));
        assert_eq!(stats[2].label, "other");
        assert!(snapshot().is_empty(), "drain clears the table");
    }

    #[test]
    fn derived_stats_honor_the_accounting_identity() {
        let s = RegionStats {
            label: "k",
            nthreads: 4,
            invocations: 3,
            wall_s: 2.0,
            busy_s: vec![1.8, 1.2, 0.6, 0.0],
        };
        assert!((s.busy_max_s() - 1.8).abs() < 1e-12);
        assert!((s.busy_mean_s() - 0.9).abs() < 1e-12);
        assert!((s.imbalance() - 2.0).abs() < 1e-12);
        // sum(busy) + join_wait == nthreads * wall, exactly.
        let sum: f64 = s.busy_s.iter().sum();
        assert!((sum + s.join_wait_s() - 4.0 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_work_region_has_unit_imbalance() {
        let s = RegionStats {
            label: "idle",
            nthreads: 2,
            invocations: 1,
            wall_s: 0.0,
            busy_s: vec![0.0, 0.0],
        };
        assert_eq!(s.imbalance(), 1.0);
        assert_eq!(s.join_wait_s(), 0.0);
    }
}
