//! Coordinate-format (COO) assembly buffer.
//!
//! Finite-volume Jacobian assembly naturally produces (row, col, value)
//! contributions edge by edge; this buffer accumulates them and converts to
//! CSR, summing duplicates, exactly like PETSc's `MatSetValues` +
//! `MatAssemblyBegin/End` pipeline.

use crate::csr::CsrMatrix;

/// A growable (row, col, value) triplet list for matrix assembly.
#[derive(Debug, Clone)]
pub struct TripletMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl TripletMatrix {
    /// Create an empty assembly buffer for an `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Create with pre-reserved capacity for `nnz` contributions.
    pub fn with_capacity(nrows: usize, ncols: usize, nnz: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::with_capacity(nnz),
            cols: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of raw (possibly duplicate) entries pushed so far.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Add `v` to entry `(i, j)`; duplicates are summed at conversion time.
    ///
    /// # Panics
    /// Panics if `(i, j)` is out of bounds.
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.nrows && j < self.ncols,
            "triplet ({i},{j}) out of bounds"
        );
        self.rows.push(i as u32);
        self.cols.push(j as u32);
        self.vals.push(v);
    }

    /// Add a dense `b x b` block with its (0,0) entry at `(i*b, j*b)`.
    pub fn push_block(&mut self, i: usize, j: usize, b: usize, block: &[f64]) {
        debug_assert_eq!(block.len(), b * b);
        for r in 0..b {
            for c in 0..b {
                let v = block[r * b + c];
                if v != 0.0 {
                    self.push(i * b + r, j * b + c, v);
                }
            }
        }
    }

    /// Convert to CSR, summing duplicate entries. Column indices within each
    /// row come out sorted ascending.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row.
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            row_counts[r as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut order: Vec<usize> = vec![0; self.vals.len()];
        {
            let mut next = row_counts.clone();
            for (k, &r) in self.rows.iter().enumerate() {
                order[next[r as usize]] = k;
                next[r as usize] += 1;
            }
        }
        // Per row: sort by column, merge duplicates.
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx: Vec<u32> = Vec::with_capacity(self.vals.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.vals.len());
        row_ptr.push(0usize);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for i in 0..self.nrows {
            scratch.clear();
            for &k in &order[row_counts[i]..row_counts[i + 1]] {
                scratch.push((self.cols[k], self.vals[k]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut iter = scratch.iter().copied();
            if let Some((mut cur_c, mut cur_v)) = iter.next() {
                for (c, v) in iter {
                    if c == cur_c {
                        cur_v += v;
                    } else {
                        col_idx.push(cur_c);
                        values.push(cur_v);
                        cur_c = c;
                        cur_v = v;
                    }
                }
                col_idx.push(cur_c);
                values.push(cur_v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_raw(self.nrows, self.ncols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_small_matrix() {
        let mut t = TripletMatrix::new(2, 3);
        t.push(0, 2, 1.0);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        let a = t.to_csr();
        assert_eq!(a.nrows(), 2);
        assert_eq!(a.ncols(), 3);
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 2), 1.0);
        assert_eq!(a.get(1, 1), 3.0);
        assert_eq!(a.get(1, 0), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(1, 1, 1.5);
        t.push(1, 1, 2.5);
        t.push(1, 0, -1.0);
        let a = t.to_csr();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(1, 1), 4.0);
        assert_eq!(a.get(1, 0), -1.0);
    }

    #[test]
    fn columns_sorted_within_rows() {
        let mut t = TripletMatrix::new(1, 5);
        for &c in &[4usize, 0, 3, 1] {
            t.push(0, c, c as f64);
        }
        let a = t.to_csr();
        let cols: Vec<u32> = a.row_cols(0).to_vec();
        assert_eq!(cols, vec![0, 1, 3, 4]);
    }

    #[test]
    fn block_push_expands() {
        let mut t = TripletMatrix::new(4, 4);
        t.push_block(1, 0, 2, &[1.0, 2.0, 3.0, 4.0]);
        let a = t.to_csr();
        assert_eq!(a.get(2, 0), 1.0);
        assert_eq!(a.get(2, 1), 2.0);
        assert_eq!(a.get(3, 0), 3.0);
        assert_eq!(a.get(3, 1), 4.0);
    }

    #[test]
    fn empty_rows_are_preserved() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(2, 2, 9.0);
        let a = t.to_csr();
        assert_eq!(a.row_cols(0).len(), 0);
        assert_eq!(a.row_cols(1).len(), 0);
        assert_eq!(a.get(2, 2), 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_push_panics() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(2, 0, 1.0);
    }
}
