//! BLAS-1 style vector kernels used throughout the solver stack.
//!
//! The Krylov solvers in `fun3d-solver` are assembled from these primitives,
//! mirroring the PETSc `Vec` operations the paper's code used.  They are kept
//! free of allocation so that the memory traffic of a GMRES iteration is
//! exactly the traffic of these loops plus the SpMV / triangular solves.
//!
//! The `_par` variants partition the vectors across a [`ParCtx`] thread
//! team.  Elementwise updates are bitwise identical to the sequential
//! kernels; the reductions (`dot_par`/`norm2_par`) combine per-thread
//! partial sums in thread order, so they are deterministic for a fixed
//! thread count and agree with the sequential result to rounding.

use crate::par::ParCtx;

/// `y <- alpha * x + y`.
///
/// # Panics
/// Panics if `x` and `y` differ in length.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y <- alpha * x + beta * y` (PETSc `VecAXPBY`).
pub fn axpby(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpby length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi + beta * *yi;
    }
}

/// `w <- alpha * x + beta * y` without touching the inputs (PETSc `VecWAXPY`
/// generalization).
pub fn waxpby(alpha: f64, x: &[f64], beta: f64, y: &[f64], w: &mut [f64]) {
    assert_eq!(x.len(), w.len(), "waxpby length mismatch");
    assert_eq!(y.len(), w.len(), "waxpby length mismatch");
    for ((wi, xi), yi) in w.iter_mut().zip(x).zip(y) {
        *wi = alpha * xi + beta * yi;
    }
}

/// `x <- alpha * x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Dot product `x . y`.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `||x||_2`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Max norm `||x||_inf`.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// Copy `x` into `y`.
pub fn copy(x: &[f64], y: &mut [f64]) {
    y.copy_from_slice(x);
}

/// Parallel [`axpy`]: each thread updates its contiguous chunk of `y`.
/// Elementwise, so bitwise identical to the sequential kernel.
pub fn axpy_par(alpha: f64, x: &[f64], y: &mut [f64], ctx: &ParCtx) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    if ctx.nthreads() == 1 {
        return axpy(alpha, x, y);
    }
    ctx.parallel_for_slices("axpy", y, 1, |_, r, ysub| axpy(alpha, &x[r], ysub));
}

/// Parallel [`axpby`] (elementwise; bitwise identical to sequential).
pub fn axpby_par(alpha: f64, x: &[f64], beta: f64, y: &mut [f64], ctx: &ParCtx) {
    assert_eq!(x.len(), y.len(), "axpby length mismatch");
    if ctx.nthreads() == 1 {
        return axpby(alpha, x, beta, y);
    }
    ctx.parallel_for_slices("axpby", y, 1, |_, r, ysub| axpby(alpha, &x[r], beta, ysub));
}

/// Parallel [`waxpby`] (elementwise; bitwise identical to sequential).
pub fn waxpby_par(alpha: f64, x: &[f64], beta: f64, y: &[f64], w: &mut [f64], ctx: &ParCtx) {
    assert_eq!(x.len(), w.len(), "waxpby length mismatch");
    assert_eq!(y.len(), w.len(), "waxpby length mismatch");
    if ctx.nthreads() == 1 {
        return waxpby(alpha, x, beta, y, w);
    }
    ctx.parallel_for_slices("waxpby", w, 1, |_, r, wsub| {
        waxpby(alpha, &x[r.clone()], beta, &y[r], wsub)
    });
}

/// Parallel [`dot`]: per-thread partial sums over the chunk partition,
/// reduced in ascending thread order.  Deterministic for a fixed thread
/// count; matches the sequential `dot` to rounding (not bitwise).
pub fn dot_par(x: &[f64], y: &[f64], ctx: &ParCtx) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    if ctx.nthreads() == 1 {
        return dot(x, y);
    }
    ctx.map_chunks("dot", x.len(), |_, r| dot(&x[r.clone()], &y[r]))
        .iter()
        .sum()
}

/// Parallel [`norm2`] built on [`dot_par`]'s ordered reduction.
pub fn norm2_par(x: &[f64], ctx: &ParCtx) -> f64 {
    dot_par(x, x, ctx).sqrt()
}

/// Analytic bytes moved by one [`axpy`]/[`axpby`] on length-`n` vectors:
/// stream `x` in, read-modify-write `y` (8 B each way).
pub fn axpy_traffic_bytes(n: usize) -> f64 {
    24.0 * n as f64
}

/// Analytic bytes moved by one [`waxpby`]: read `x` and `y`, write `w`.
pub fn waxpby_traffic_bytes(n: usize) -> f64 {
    24.0 * n as f64
}

/// Analytic bytes moved by one [`dot`] (or [`norm2`]): read both operands.
pub fn dot_traffic_bytes(n: usize) -> f64 {
    16.0 * n as f64
}

/// Set every entry of `x` to `v`.
pub fn set(v: f64, x: &mut [f64]) {
    for xi in x {
        *xi = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_adds_scaled_vector() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpby_combines_both() {
        let x = [1.0, 2.0];
        let mut y = [4.0, 8.0];
        axpby(3.0, &x, 0.5, &mut y);
        assert_eq!(y, [5.0, 10.0]);
    }

    #[test]
    fn waxpby_leaves_inputs_untouched() {
        let x = [1.0, 0.0];
        let y = [0.0, 1.0];
        let mut w = [9.0, 9.0];
        waxpby(2.0, &x, -1.0, &y, &mut w);
        assert_eq!(w, [2.0, -1.0]);
        assert_eq!(x, [1.0, 0.0]);
        assert_eq!(y, [0.0, 1.0]);
    }

    #[test]
    fn dot_and_norms() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn scale_and_set() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
        set(0.5, &mut x);
        assert_eq!(x, [0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_length_mismatch_panics() {
        let x = [1.0];
        let mut y = [1.0, 2.0];
        axpy(1.0, &x, &mut y);
    }

    #[test]
    fn norm2_of_empty_is_zero() {
        assert_eq!(norm2(&[]), 0.0);
    }
}
