//! Bitwise equivalence of the BCSR micro-kernel tiers.
//!
//! The determinism story (seq == par for any thread count) extends across
//! `FUN3D_BLOCK_KERNEL` tiers: generic, fixed, and batched kernels must
//! produce *bitwise identical* SpMV and block-ILU sweep results — the
//! tiers only reorder updates to independent accumulators, never the
//! addition sequence feeding one accumulator.  Property tests over random
//! block patterns (including empty rows, degenerate one-row matrices, and
//! block sizes 1..=6, i.e. both unrolled and fallback paths) pin that
//! contract, together with unit cases for the structure-dedup pass.

use fun3d_sparse::bcsr::BcsrMatrix;
use fun3d_sparse::block_ilu::BlockIluFactors;
use fun3d_sparse::blockspec::{analyze, BlockKernel};
use fun3d_sparse::par::ParCtx;
use fun3d_sparse::triplet::TripletMatrix;
use fun3d_sparse::CsrMatrix;
use proptest::prelude::*;

const TIERS: [BlockKernel; 3] = [
    BlockKernel::Generic,
    BlockKernel::Fixed,
    BlockKernel::Batched,
];
const THREAD_COUNTS: [usize; 3] = [2, 3, 7];

/// A block-structured matrix from block-triplet entries; rows with no
/// entries at all stay genuinely empty (no diagonal is forced).
fn block_matrix(nb: usize, b: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut t = TripletMatrix::new(nb * b, nb * b);
    for &(bi, bj, v) in entries {
        if bi < nb && bj < nb {
            let blk: Vec<f64> = (0..b * b).map(|q| v + q as f64 * 0.01).collect();
            t.push_block(bi, bj, b, &blk);
        }
    }
    t.to_csr()
}

/// A diagonally dominant block matrix (factorizable by block ILU).
fn dd_block_matrix(nb: usize, b: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut t = TripletMatrix::new(nb * b, nb * b);
    let mut ndiag = vec![0usize; nb];
    for &(bi, bj, v) in entries {
        if bi < nb && bj < nb && bi != bj {
            let blk: Vec<f64> = (0..b * b).map(|q| v * 0.1 + q as f64 * 0.001).collect();
            t.push_block(bi, bj, b, &blk);
            ndiag[bi] += 1;
        }
    }
    for (bi, &count) in ndiag.iter().enumerate() {
        let mut blk: Vec<f64> = (0..b * b).map(|q| (q as f64 * 0.013).sin() * 0.2).collect();
        for d in 0..b {
            blk[d * b + d] += 2.0 + count as f64;
        }
        t.push_block(bi, bi, b, &blk);
    }
    t.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// SpMV: all three tiers bitwise-equal, sequential and parallel, for
    /// block sizes spanning the unrolled paths (1..=5) and the generic
    /// fallback (6), with patterns that include fully empty block rows.
    #[test]
    fn spmv_tiers_bitwise_equal(
        nb in 1usize..16,
        b in 1usize..7,
        entries in proptest::collection::vec((0usize..16, 0usize..16, -1.0f64..1.0), 0..80),
    ) {
        let a = block_matrix(nb, b, &entries);
        let base = BcsrMatrix::from_csr(&a, b).with_kernel(BlockKernel::Generic);
        let x: Vec<f64> = (0..nb * b).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y0 = vec![f64::NAN; nb * b];
        base.spmv(&x, &mut y0);
        for kernel in TIERS {
            let ab = base.clone().with_kernel(kernel);
            let mut y = vec![f64::NAN; nb * b];
            ab.spmv(&x, &mut y);
            prop_assert_eq!(&y0, &y, "kernel={} b={}", kernel, b);
            for nthreads in THREAD_COUNTS {
                let mut yp = vec![f64::NAN; nb * b];
                ab.spmv_par(&x, &mut yp, &ParCtx::new(nthreads));
                prop_assert_eq!(&y0, &yp, "kernel={} b={} nthreads={}", kernel, b, nthreads);
            }
        }
    }

    /// Block-ILU sweeps: all three tiers bitwise-equal, sequential and
    /// level-scheduled parallel.
    #[test]
    fn bilu_sweep_tiers_bitwise_equal(
        nb in 1usize..14,
        b in 1usize..7,
        entries in proptest::collection::vec((0usize..14, 0usize..14, -1.0f64..1.0), 0..50),
    ) {
        let a = dd_block_matrix(nb, b, &entries);
        let ab = BcsrMatrix::from_csr(&a, b);
        let f0 = BlockIluFactors::factor_with_kernel(&ab, BlockKernel::Generic).unwrap();
        let n = nb * b;
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.71).cos()).collect();
        let mut x0 = vec![0.0; n];
        f0.solve(&rhs, &mut x0);
        for kernel in TIERS {
            let f = BlockIluFactors::factor_with_kernel(&ab, kernel).unwrap();
            let mut x = vec![0.0; n];
            f.solve(&rhs, &mut x);
            prop_assert_eq!(&x0, &x, "kernel={} b={}", kernel, b);
            for nthreads in THREAD_COUNTS {
                let mut xp = vec![0.0; n];
                f.solve_par(&rhs, &mut xp, &ParCtx::new(nthreads));
                prop_assert_eq!(&x0, &xp, "kernel={} b={} nthreads={}", kernel, b, nthreads);
            }
        }
    }

    /// The structure pass is well-formed on arbitrary patterns: batches
    /// tile the rows in order, every row's template deltas reproduce its
    /// column indices, and rows sharing a template really have identical
    /// relative patterns.
    #[test]
    fn structure_analysis_is_consistent(
        nb in 0usize..16,
        entries in proptest::collection::vec((0usize..16, 0usize..16, 0i32..1), 0..80),
    ) {
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); nb];
        for &(i, j, _) in &entries {
            if i < nb && j < nb {
                rows[i].push(j as u32);
            }
        }
        let mut row_ptr = vec![0usize];
        let mut col_idx: Vec<u32> = Vec::new();
        for r in &mut rows {
            r.sort_unstable();
            r.dedup();
            col_idx.extend_from_slice(r);
            row_ptr.push(col_idx.len());
        }
        let st = analyze(&row_ptr, &col_idx);
        // Batches tile 0..nb in order.
        let mut next = 0u32;
        for bt in st.batches() {
            prop_assert_eq!(bt.start, next);
            prop_assert!(bt.len >= 1);
            next += bt.len;
        }
        prop_assert_eq!(next as usize, nb);
        // Each row's template deltas reproduce its columns exactly.
        for bi in 0..nb {
            let t = st.template_of_row()[bi];
            let deltas = st.template_deltas(t);
            let cols = &col_idx[row_ptr[bi]..row_ptr[bi + 1]];
            prop_assert_eq!(deltas.len(), cols.len());
            for (&d, &c) in deltas.iter().zip(cols) {
                prop_assert_eq!(bi as i64 + d, c as i64);
            }
        }
    }
}

/// Degenerate shapes the proptest generators may not always hit: a single
/// block row, and a matrix whose rows are all empty (zero batches of work,
/// non-zero rows).
#[test]
fn degenerate_shapes_are_bitwise_equal() {
    for b in [1usize, 4, 5] {
        // Single block row with a self block.
        let one = block_matrix(1, b, &[(0, 0, 0.5)]);
        // All rows empty: spmv must still zero the output.
        let empty = block_matrix(3, b, &[]);
        for a in [one, empty] {
            let base = BcsrMatrix::from_csr(&a, b).with_kernel(BlockKernel::Generic);
            let x: Vec<f64> = (0..a.ncols()).map(|i| i as f64 + 0.5).collect();
            let mut y0 = vec![f64::NAN; a.nrows()];
            base.spmv(&x, &mut y0);
            for kernel in [BlockKernel::Fixed, BlockKernel::Batched] {
                let ab = base.clone().with_kernel(kernel);
                let mut y = vec![f64::NAN; a.nrows()];
                ab.spmv(&x, &mut y);
                assert_eq!(y0, y, "b={b} kernel={kernel}");
            }
        }
    }
}

/// The dedup hash groups *shifted-but-identical* patterns (same relative
/// stencil at different rows) into one template, and distinguishes
/// patterns that differ in any column.
#[test]
fn dedup_groups_shifted_identical_patterns() {
    // Rows 0, 2, 4 carry (self, self+1); rows 1, 3 carry (self-1, self).
    let row_ptr = vec![0usize, 2, 4, 6, 8, 10];
    let col_idx = vec![0u32, 1, 0, 1, 2, 3, 2, 3, 4, 5];
    let st = analyze(&row_ptr, &col_idx);
    let t = st.template_of_row();
    assert_eq!(t[0], t[2]);
    assert_eq!(t[2], t[4]);
    assert_eq!(t[1], t[3]);
    assert_ne!(t[0], t[1]);
    assert_eq!(st.ntemplates(), 2);
    assert_eq!(st.template_deltas(t[0]), &[0, 1]);
    assert_eq!(st.template_deltas(t[1]), &[-1, 0]);
    // Alternating templates -> five singleton batches (no false merging).
    assert_eq!(st.batches().len(), 5);
    let stats = st.stats();
    assert!((stats.hit_rate - 1.0).abs() < 1e-15, "{stats:?}");
    assert_eq!(stats.max_batch_len, 1);
}
