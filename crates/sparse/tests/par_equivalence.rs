//! Threaded-vs-sequential equivalence for the `_par` kernels.
//!
//! Property tests over random shapes — including empty rows, `nthreads >
//! nrows`, and one thread — plus deterministic large cases that cross the
//! spawn threshold so the actually-threaded code paths run under the test
//! harness (and under `cargo miri`/TSan if ever enabled).

use fun3d_sparse::bcsr::BcsrMatrix;
use fun3d_sparse::block_ilu::BlockIluFactors;
use fun3d_sparse::ilu::{IluFactors, IluOptions};
use fun3d_sparse::par::ParCtx;
use fun3d_sparse::triplet::TripletMatrix;
use fun3d_sparse::{vec_ops, CsrMatrix};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 7];

/// A random square matrix that may have completely empty rows.
fn sparse_from_entries(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut t = TripletMatrix::new(n, n);
    for &(i, j, v) in entries {
        if i < n && j < n {
            t.push(i, j, v);
        }
    }
    t.to_csr()
}

/// A diagonally dominant matrix (factorizable) with a few couplings per row.
fn dd_from_entries(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut t = TripletMatrix::new(n, n);
    let mut rowsum = vec![0.0f64; n];
    for &(i, j, v) in entries {
        if i < n && j < n && i != j {
            t.push(i, j, v);
            rowsum[i] += v.abs();
        }
    }
    for (i, s) in rowsum.iter().enumerate() {
        t.push(i, i, s + 1.0);
    }
    t.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn csr_spmv_par_matches_sequential(
        n in 1usize..80,
        entries in proptest::collection::vec((0usize..80, 0usize..80, -1.0f64..1.0), 0..250),
    ) {
        let a = sparse_from_entries(n, &entries);
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 29) as f64) / 7.0 - 2.0).collect();
        let mut ys = vec![0.0; n];
        a.spmv(&x, &mut ys);
        for nthreads in THREAD_COUNTS {
            let mut yp = vec![f64::NAN; n];
            a.spmv_par(&x, &mut yp, &ParCtx::new(nthreads));
            // Row sums are computed identically: bitwise equal.
            prop_assert_eq!(&ys, &yp, "nthreads={}", nthreads);
        }
    }

    #[test]
    fn bcsr_spmv_par_matches_sequential(
        nb in 1usize..16,
        b in 1usize..7,
        entries in proptest::collection::vec((0usize..16, 0usize..16, -1.0f64..1.0), 0..80),
    ) {
        let mut t = TripletMatrix::new(nb * b, nb * b);
        for &(bi, bj, v) in &entries {
            if bi < nb && bj < nb {
                let blk: Vec<f64> = (0..b * b).map(|q| v + q as f64 * 0.01).collect();
                t.push_block(bi, bj, b, &blk);
            }
        }
        let a = t.to_csr();
        let ab = BcsrMatrix::from_csr(&a, b);
        let x: Vec<f64> = (0..nb * b).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut ys = vec![0.0; nb * b];
        ab.spmv(&x, &mut ys);
        for nthreads in THREAD_COUNTS {
            let mut yp = vec![f64::NAN; nb * b];
            ab.spmv_par(&x, &mut yp, &ParCtx::new(nthreads));
            prop_assert_eq!(&ys, &yp, "b={} nthreads={}", b, nthreads);
        }
    }

    #[test]
    fn vec_ops_par_match_sequential(
        x in proptest::collection::vec(-10.0f64..10.0, 1..200),
        alpha in -3.0f64..3.0,
        beta in -3.0f64..3.0,
    ) {
        let n = x.len();
        let y: Vec<f64> = x.iter().map(|v| v * 0.5 - 1.0).collect();
        for nthreads in THREAD_COUNTS {
            let ctx = ParCtx::new(nthreads);
            // Elementwise ops: bitwise identical.
            let mut ys = y.clone();
            let mut yp = y.clone();
            vec_ops::axpy(alpha, &x, &mut ys);
            vec_ops::axpy_par(alpha, &x, &mut yp, &ctx);
            prop_assert_eq!(&ys, &yp);
            vec_ops::axpby(alpha, &x, beta, &mut ys);
            vec_ops::axpby_par(alpha, &x, beta, &mut yp, &ctx);
            prop_assert_eq!(&ys, &yp);
            let mut ws = vec![0.0; n];
            let mut wp = vec![0.0; n];
            vec_ops::waxpby(alpha, &x, beta, &y, &mut ws);
            vec_ops::waxpby_par(alpha, &x, beta, &y, &mut wp, &ctx);
            prop_assert_eq!(&ws, &wp);
            // Reductions: within rounding of sequential, and exactly the
            // ordered sum of the per-chunk partials (determinism contract).
            let ds = vec_ops::dot(&x, &y);
            let dp = vec_ops::dot_par(&x, &y, &ctx);
            prop_assert!((ds - dp).abs() <= 1e-12 * (1.0 + ds.abs()));
            if nthreads > 1 {
                let ordered: f64 = (0..nthreads)
                    .map(|t| {
                        let r = ctx.chunk(n, t);
                        vec_ops::dot(&x[r.clone()], &y[r])
                    })
                    .sum();
                prop_assert_eq!(dp, ordered);
            }
            let np = vec_ops::norm2_par(&x, &ctx);
            prop_assert!((vec_ops::norm2(&x) - np).abs() <= 1e-12 * (1.0 + np));
        }
    }

    #[test]
    fn ilu_solve_par_matches_sequential(
        n in 1usize..60,
        fill in 0usize..2,
        entries in proptest::collection::vec((0usize..60, 0usize..60, -1.0f64..1.0), 0..150),
    ) {
        let a = dd_from_entries(n, &entries);
        let f = IluFactors::factor(&a, &IluOptions::with_fill(fill)).unwrap();
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).cos()).collect();
        let mut xs = vec![0.0; n];
        f.solve(&rhs, &mut xs);
        for nthreads in THREAD_COUNTS {
            let mut xp = vec![0.0; n];
            f.solve_par(&rhs, &mut xp, &ParCtx::new(nthreads));
            prop_assert_eq!(&xs, &xp, "fill={} nthreads={}", fill, nthreads);
        }
    }
}

#[test]
fn large_kernels_cross_the_spawn_threshold() {
    // Big enough that the helpers actually fork worker threads; everything
    // above ran on the inline fallback with identical chunking.
    let n = 9000usize;
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        t.push(i, i, 4.0);
        if i > 0 {
            t.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            t.push(i, i + 1, -1.0);
        }
        t.push(i, (i * 7919) % n, 0.25);
    }
    let a = t.to_csr();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let ctx = ParCtx::new(4);

    let mut ys = vec![0.0; n];
    let mut yp = vec![0.0; n];
    a.spmv(&x, &mut ys);
    a.spmv_par(&x, &mut yp, &ctx);
    assert_eq!(ys, yp, "threaded CSR SpMV");

    let b = 2usize;
    let ab = BcsrMatrix::from_csr(&a, b);
    ab.spmv(&x, &mut ys);
    ab.spmv_par(&x, &mut yp, &ctx);
    assert_eq!(ys, yp, "threaded BCSR SpMV");

    let ds = vec_ops::dot(&x, &ys);
    let dp = vec_ops::dot_par(&x, &ys, &ctx);
    assert!((ds - dp).abs() <= 1e-12 * ds.abs().max(1.0), "{ds} vs {dp}");

    let mut w = x.clone();
    let mut wp = x.clone();
    vec_ops::axpy(0.3, &ys, &mut w);
    vec_ops::axpy_par(0.3, &ys, &mut wp, &ctx);
    assert_eq!(w, wp, "threaded axpy");
}

#[test]
fn block_ilu_solve_par_with_wide_levels() {
    // A block matrix whose rows mostly depend on one hub row: nearly all
    // block rows land in one wide level, so the level sweep actually
    // partitions work across threads.
    let b = 3usize;
    let nb = 50usize;
    let mut t = TripletMatrix::new(nb * b, nb * b);
    let diag: Vec<f64> = (0..b * b)
        .map(|q| if q % (b + 1) == 0 { 5.0 } else { 0.2 })
        .collect();
    let off: Vec<f64> = (0..b * b).map(|q| 0.1 + (q as f64) * 0.01).collect();
    for i in 0..nb {
        t.push_block(i, i, b, &diag);
        if i > 0 {
            t.push_block(i, 0, b, &off);
            t.push_block(0, i, b, &off);
        }
    }
    let ab = BcsrMatrix::from_csr(&t.to_csr(), b);
    let f = BlockIluFactors::factor(&ab).unwrap();
    assert_eq!(f.level_counts(), (2, 2));
    let rhs: Vec<f64> = (0..nb * b).map(|i| (i as f64 * 0.23).sin()).collect();
    let mut xs = vec![0.0; nb * b];
    f.solve(&rhs, &mut xs);
    for nthreads in [2usize, 5, 100] {
        let mut xp = vec![0.0; nb * b];
        f.solve_par(&rhs, &mut xp, &ParCtx::new(nthreads));
        assert_eq!(xs, xp, "nthreads={nthreads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The fun3d-profile accounting identity over random shapes: for every
    /// recorded region, per-thread busy times sum to within the join-wait of
    /// `nthreads * wall` (exactly, by construction), no thread is busier
    /// than the region wall, and profiling never perturbs kernel results.
    ///
    /// The profiler is process-global, so this drains whatever regions any
    /// concurrently running test recorded too — the invariants are
    /// per-invocation and additive, so they must hold for all of them.
    #[test]
    fn profiled_busy_sums_within_join_wait_of_wall(
        n in 1usize..6000,
        nthreads in 1usize..6,
    ) {
        use fun3d_sparse::profile;
        let ctx = ParCtx::new(nthreads);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| 1.0 - (i % 17) as f64 * 0.25).collect();
        let mut w_off = vec![0.0; n];
        profile::set_enabled(false);
        let d_off = vec_ops::dot_par(&x, &y, &ctx);
        vec_ops::waxpby_par(2.0, &x, -1.0, &y, &mut w_off, &ctx);

        profile::set_enabled(true);
        let mut w_on = vec![0.0; n];
        let d_on = vec_ops::dot_par(&x, &y, &ctx);
        vec_ops::waxpby_par(2.0, &x, -1.0, &y, &mut w_on, &ctx);
        profile::set_enabled(false);
        let stats = profile::drain();

        prop_assert_eq!(d_off, d_on, "profiling perturbed a reduction");
        prop_assert_eq!(w_off, w_on, "profiling perturbed an elementwise kernel");
        const EPS: f64 = 1e-6;
        for s in &stats {
            let sum: f64 = s.busy_s.iter().sum();
            let team = s.nthreads as f64 * s.wall_s;
            prop_assert!((sum + s.join_wait_s() - team).abs() <= 1e-9,
                "identity violated: {:?}", s);
            prop_assert!(s.busy_max_s() <= s.wall_s + EPS, "busy > wall: {:?}", s);
            prop_assert!(s.join_wait_s() >= -EPS * s.nthreads as f64, "{:?}", s);
        }
        // nthreads == 1 short-circuits to the sequential kernels: the _par
        // wrappers never enter a region, so labels only appear for teams.
        if nthreads > 1 {
            prop_assert!(stats.iter().any(|s| s.label == "dot" && s.nthreads == nthreads));
            prop_assert!(stats.iter().any(|s| s.label == "waxpby" && s.nthreads == nthreads));
        }
    }
}
