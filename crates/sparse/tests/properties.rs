//! Property-based tests for the sparse kernels.

use fun3d_sparse::bcsr::BcsrMatrix;
use fun3d_sparse::csr::CsrMatrix;
use fun3d_sparse::ilu::{IluFactors, IluOptions, PrecStorage};
use fun3d_sparse::layout::{
    interlaced_to_segregated_perm, segregated_to_interlaced_perm, to_interlaced, to_segregated,
};
use fun3d_sparse::triplet::TripletMatrix;
use proptest::prelude::*;

/// Strategy: a random sparse square matrix of dimension n with a structural
/// diagonal, entries in [-1, 1], diagonally dominated to keep ILU happy.
fn sparse_square(max_n: usize) -> impl Strategy<Value = CsrMatrix> {
    (2..max_n).prop_flat_map(|n| {
        let entries = proptest::collection::vec((0..n, 0..n, -1.0f64..1.0), 0..4 * n);
        entries.prop_map(move |es| {
            let mut t = TripletMatrix::new(n, n);
            let mut rowsum = vec![0.0f64; n];
            for (i, j, v) in es {
                if i != j {
                    t.push(i, j, v);
                    rowsum[i] += v.abs();
                }
            }
            for (i, rs) in rowsum.iter().enumerate() {
                t.push(i, i, rs + 1.0);
            }
            t.to_csr()
        })
    })
}

/// Dense reference matvec.
fn dense_spmv(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; a.nrows()];
    for i in 0..a.nrows() {
        for j in 0..a.ncols() {
            y[i] += a.get(i, j) * x[j];
        }
    }
    y
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spmv_matches_dense_reference(a in sparse_square(24)) {
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 37 + 11) % 17) as f64 - 8.0).collect();
        let mut y = vec![0.0; a.nrows()];
        a.spmv(&x, &mut y);
        let yref = dense_spmv(&a, &x);
        for (u, v) in y.iter().zip(&yref) {
            prop_assert!((u - v).abs() < 1e-9 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn transpose_is_involutive(a in sparse_square(20)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn symmetric_permute_preserves_spmv(a in sparse_square(16), seed in 0u64..1000) {
        use rand::{rngs::SmallRng, seq::SliceRandom, SeedableRng};
        let n = a.nrows();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut SmallRng::seed_from_u64(seed));
        let b = a.permute_symmetric(&perm);
        // (P A P^T)(P x) == P (A x)
        let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 1.0).collect();
        let mut px = vec![0.0; n];
        for i in 0..n { px[perm[i]] = x[i]; }
        let mut y = vec![0.0; n];
        a.spmv(&x, &mut y);
        let mut py = vec![0.0; n];
        b.spmv(&px, &mut py);
        for i in 0..n {
            prop_assert!((py[perm[i]] - y[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn layout_perms_are_mutually_inverse(npoints in 1usize..40, ncomp in 1usize..6) {
        let s2i = segregated_to_interlaced_perm(npoints, ncomp);
        let i2s = interlaced_to_segregated_perm(npoints, ncomp);
        for k in 0..npoints * ncomp {
            prop_assert_eq!(i2s[s2i[k]], k);
        }
    }

    #[test]
    fn interlace_roundtrip(npoints in 1usize..30, ncomp in 1usize..6) {
        let n = npoints * ncomp;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut mid = vec![0.0; n];
        let mut back = vec![0.0; n];
        to_interlaced(&x, npoints, ncomp, &mut mid);
        to_segregated(&mid, npoints, ncomp, &mut back);
        prop_assert_eq!(x, back);
    }

    #[test]
    fn bcsr_spmv_agrees_with_csr(nb in 2usize..10, b in 1usize..6, seed in 0u64..500) {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = TripletMatrix::new(nb * b, nb * b);
        for i in 0..nb {
            for _ in 0..3 {
                let j = rng.gen_range(0..nb);
                let blk: Vec<f64> = (0..b * b).map(|_| rng.gen_range(-1.0..1.0)).collect();
                t.push_block(i, j, b, &blk);
            }
            let eye: Vec<f64> = (0..b * b).map(|k| if k % (b + 1) == 0 { 4.0 } else { 0.1 }).collect();
            t.push_block(i, i, b, &eye);
        }
        let a = t.to_csr();
        let ab = BcsrMatrix::from_csr(&a, b);
        let x: Vec<f64> = (0..a.ncols()).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut y1 = vec![0.0; a.nrows()];
        let mut y2 = vec![0.0; a.nrows()];
        a.spmv(&x, &mut y1);
        ab.spmv(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn ilu_pattern_grows_with_fill(a in sparse_square(18)) {
        let mut prev = 0usize;
        for k in 0..3 {
            if let Ok(f) = IluFactors::factor(&a, &IluOptions::with_fill(k)) {
                prop_assert!(f.nnz() >= prev);
                prev = f.nnz();
            }
        }
    }

    #[test]
    fn ilu_full_fill_solves_exactly(a in sparse_square(14)) {
        let n = a.nrows();
        let f = IluFactors::factor(&a, &IluOptions::with_fill(n)).unwrap();
        let xtrue: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xtrue, &mut b);
        let mut x = vec![0.0; n];
        f.solve(&b, &mut x);
        for (u, v) in x.iter().zip(&xtrue) {
            prop_assert!((u - v).abs() < 1e-6, "{} vs {}", u, v);
        }
    }

    #[test]
    fn single_precision_solve_is_small_perturbation(a in sparse_square(16)) {
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13 + 5) % 7) as f64 - 3.0).collect();
        let fd = IluFactors::factor(&a, &IluOptions::with_fill(1)).unwrap();
        let fs = IluFactors::factor(&a, &IluOptions { fill_level: 1, storage: PrecStorage::Single }).unwrap();
        let mut xd = vec![0.0; n];
        let mut xs = vec![0.0; n];
        fd.solve(&b, &mut xd);
        fs.solve(&b, &mut xs);
        let scale = xd.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (u, v) in xd.iter().zip(&xs) {
            prop_assert!((u - v).abs() / scale < 1e-3);
        }
    }

    #[test]
    fn triplet_duplicates_sum(n in 2usize..12, dups in 1usize..5) {
        let mut t = TripletMatrix::new(n, n);
        for _ in 0..dups {
            t.push(0, 1, 2.0);
        }
        let a = t.to_csr();
        prop_assert!((a.get(0, 1) - 2.0 * dups as f64).abs() < 1e-12);
        prop_assert_eq!(a.nnz(), 1);
    }
}
