//! Flight recorder ("black box"): per-thread ring buffers that keep the
//! most recent spans, counter deltas, and events, and dump them to a
//! `fun3d-blackbox/1` JSONL file when a run dies.
//!
//! The paper's instrumentation story is post-mortem: reports and event
//! streams are written *after* a run completes, so a panic, a diverging
//! solve, or a killed process leaves nothing behind.  The recorder closes
//! that gap.  While armed, every closed span, counter bump, and emitted
//! event also lands in a fixed-capacity ring on the recording thread; on
//! panic (a process-wide hook), on solver anomaly, or on serve-side SLO
//! saturation the rings are serialized so the last N records per thread
//! survive the failure.
//!
//! ## Cost contract
//!
//! The recorder matches the profiler's off-path discipline: when disarmed,
//! every capture hook is a single `Relaxed` atomic load.  When armed,
//! writers append through [`Mutex::try_lock`] and **never block** — a
//! concurrent dump makes the colliding record count as dropped instead of
//! stalling the hot path.  The recorder only observes; it never feeds back
//! into solver state, so numerical results are bitwise identical armed or
//! not (pinned by a solver test).

use crate::json::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::Instant;

/// Schema identifier written as the JSONL header line.
pub const SCHEMA: &str = "fun3d-blackbox/1";

/// Default per-thread ring capacity (records, not bytes).
pub const DEFAULT_CAPACITY: usize = 4096;

/// One captured record in a thread's ring.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightRecord {
    /// A span that closed: its full path, open time, and duration.
    Span {
        /// Slash-separated span path (or bare name on a disabled registry).
        path: String,
        /// Open time, seconds since the recorder was armed.
        t_s: f64,
        /// Open-to-close duration in seconds.
        dur_s: f64,
    },
    /// A counter bump.
    Counter {
        /// Counter name (or `path:name` for addressed counters).
        path: String,
        /// The delta added.
        delta: f64,
        /// Capture time, seconds since the recorder was armed.
        t_s: f64,
    },
    /// An event emitted into any [`crate::events::EventSink`] (enabled or
    /// not), carried as its rendered `fun3d-events/1` JSON object.
    Event {
        /// The event's `ev` tag (`newton_step`, `anomaly`, ...).
        tag: String,
        /// The full event object as compact JSON text.
        data: String,
        /// Capture time, seconds since the recorder was armed.
        t_s: f64,
    },
}

impl FlightRecord {
    /// Capture time, seconds since the recorder was armed.
    pub fn t_s(&self) -> f64 {
        match self {
            FlightRecord::Span { t_s, .. }
            | FlightRecord::Counter { t_s, .. }
            | FlightRecord::Event { t_s, .. } => *t_s,
        }
    }
}

struct RingBuf {
    slots: Vec<FlightRecord>,
    /// Next write index; when the ring is full this is also the oldest slot.
    head: usize,
    /// Total records ever written (wraparound included).
    written: u64,
}

impl RingBuf {
    fn push(&mut self, capacity: usize, rec: FlightRecord) {
        self.written += 1;
        if capacity == 0 {
            return;
        }
        if self.slots.len() < capacity {
            self.slots.push(rec);
        } else {
            self.slots[self.head] = rec;
        }
        self.head = (self.head + 1) % capacity;
    }

    /// Records oldest-first.
    fn ordered(&self, capacity: usize) -> Vec<FlightRecord> {
        if self.slots.len() < capacity || capacity == 0 {
            self.slots.clone()
        } else {
            let mut out = Vec::with_capacity(capacity);
            out.extend_from_slice(&self.slots[self.head..]);
            out.extend_from_slice(&self.slots[..self.head]);
            out
        }
    }
}

struct Ring {
    thread: String,
    capacity: usize,
    buf: Mutex<RingBuf>,
    /// Records lost to try_lock contention (a dump was in progress).
    dropped: AtomicU64,
}

impl Ring {
    fn new(thread: String, capacity: usize) -> Self {
        Self {
            thread,
            capacity,
            buf: Mutex::new(RingBuf {
                slots: Vec::with_capacity(capacity.min(DEFAULT_CAPACITY)),
                head: 0,
                written: 0,
            }),
            dropped: AtomicU64::new(0),
        }
    }

    /// Non-blocking append: a locked buffer (dump in progress) drops the
    /// record and counts it instead of stalling the recording thread.
    fn push(&self, rec: FlightRecord) {
        match self.buf.try_lock() {
            Ok(mut b) => b.push(self.capacity, rec),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

struct State {
    gen: u64,
    capacity: usize,
    epoch: Instant,
    rings: Vec<Arc<Ring>>,
    dump_path: Option<String>,
}

/// The one-flag fast gate every capture hook reads first.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Arm generation; bumped by [`arm`] so cached thread rings re-register.
static GEN: AtomicU64 = AtomicU64::new(0);
static STATE: Mutex<Option<State>> = Mutex::new(None);
static HOOK: Once = Once::new();

thread_local! {
    /// (generation, arm epoch, this thread's ring) — cached so the armed
    /// hot path takes no global lock.
    static TL_RING: std::cell::RefCell<Option<(u64, Instant, Arc<Ring>)>> =
        const { std::cell::RefCell::new(None) };
}

fn lock_state() -> std::sync::MutexGuard<'static, Option<State>> {
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether the recorder is capturing.  This is the whole disarmed cost of
/// every hook: one `Relaxed` load.
#[inline]
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arm the recorder: fresh rings of `capacity` records per thread, dumping
/// to `dump_path` (when given) on panic or by [`dump_now`].  Re-arming
/// discards previously captured rings.  Installs the process panic hook on
/// first use.
pub fn arm(capacity: usize, dump_path: Option<&str>) {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(path) = dump_now("panic") {
                eprintln!("fun3d-blackbox: wrote {path}");
            }
            prev(info);
        }));
    });
    let mut st = lock_state();
    let gen = GEN.load(Ordering::Relaxed) + 1;
    GEN.store(gen, Ordering::Relaxed);
    *st = Some(State {
        gen,
        capacity,
        epoch: Instant::now(),
        rings: Vec::new(),
        dump_path: dump_path.map(str::to_string),
    });
    ARMED.store(true, Ordering::Relaxed);
}

/// Stop capturing.  Captured rings stay readable (e.g. by [`dump_now`])
/// until the next [`arm`].
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
}

/// Run `f` with this thread's ring and the arm epoch, registering the ring
/// on first use (or after a re-arm).  Returns `None` when never armed.
fn with_ring<R>(f: impl FnOnce(&Instant, &Ring) -> R) -> Option<R> {
    let gen = GEN.load(Ordering::Relaxed);
    TL_RING.with(|tl| {
        let mut tl = tl.borrow_mut();
        let stale = match &*tl {
            Some((g, _, _)) => *g != gen,
            None => true,
        };
        if stale {
            let mut st = lock_state();
            let st = st.as_mut()?;
            let name = std::thread::current()
                .name()
                .unwrap_or("thread")
                .to_string();
            let ring = Arc::new(Ring::new(format!("{name}#{}", st.rings.len()), st.capacity));
            st.rings.push(Arc::clone(&ring));
            *tl = Some((st.gen, st.epoch, ring));
        }
        let (_, epoch, ring) = tl.as_ref().expect("just ensured");
        Some(f(epoch, ring))
    })
}

/// A span opened while the recorder was armed; closing it records a
/// [`FlightRecord::Span`].
#[derive(Debug)]
pub(crate) struct OpenSpan {
    path: String,
    start: f64,
}

/// Begin recording a span under its bare `name` (disabled-registry path).
pub(crate) fn span_open(name: &str) -> Option<OpenSpan> {
    if !is_armed() {
        return None;
    }
    span_open_owned(name.to_string())
}

/// Begin recording a span under an already-resolved full path.
pub(crate) fn span_open_owned(path: String) -> Option<OpenSpan> {
    if !is_armed() {
        return None;
    }
    let start = with_ring(|epoch, _| epoch.elapsed().as_secs_f64())?;
    Some(OpenSpan { path, start })
}

/// Close an open span, appending it to this thread's ring.
pub(crate) fn span_close(open: OpenSpan) {
    if !is_armed() {
        return;
    }
    with_ring(|epoch, ring| {
        let now = epoch.elapsed().as_secs_f64();
        ring.push(FlightRecord::Span {
            path: open.path,
            t_s: open.start,
            dur_s: (now - open.start).max(0.0),
        });
    });
}

/// Record a counter bump.
pub(crate) fn counter(path: &str, delta: f64) {
    if !is_armed() {
        return;
    }
    with_ring(|epoch, ring| {
        ring.push(FlightRecord::Counter {
            path: path.to_string(),
            delta,
            t_s: epoch.elapsed().as_secs_f64(),
        });
    });
}

/// Record an emitted event as its rendered JSON object.
pub(crate) fn event(tag: &str, data: String) {
    if !is_armed() {
        return;
    }
    with_ring(|epoch, ring| {
        ring.push(FlightRecord::Event {
            tag: tag.to_string(),
            data,
            t_s: epoch.elapsed().as_secs_f64(),
        });
    });
}

fn record_to_json(r: &FlightRecord) -> Value {
    match r {
        FlightRecord::Span { path, t_s, dur_s } => Value::Obj(vec![
            ("rec".into(), Value::Str("span".into())),
            ("path".into(), Value::Str(path.clone())),
            ("t_s".into(), Value::Num(*t_s)),
            ("dur_s".into(), Value::Num(*dur_s)),
        ]),
        FlightRecord::Counter { path, delta, t_s } => Value::Obj(vec![
            ("rec".into(), Value::Str("counter".into())),
            ("path".into(), Value::Str(path.clone())),
            ("delta".into(), Value::Num(*delta)),
            ("t_s".into(), Value::Num(*t_s)),
        ]),
        FlightRecord::Event { tag, data, t_s } => Value::Obj(vec![
            ("rec".into(), Value::Str("event".into())),
            ("tag".into(), Value::Str(tag.clone())),
            ("data".into(), Value::Str(data.clone())),
            ("t_s".into(), Value::Num(*t_s)),
        ]),
    }
}

fn record_from_json(v: &Value) -> Result<FlightRecord, String> {
    let f = |key: &str| {
        v.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("missing/invalid field {key:?}"))
    };
    let s = |key: &str| {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing/invalid field {key:?}"))
    };
    match v.get("rec").and_then(Value::as_str) {
        Some("span") => Ok(FlightRecord::Span {
            path: s("path")?,
            t_s: f("t_s")?,
            dur_s: f("dur_s")?,
        }),
        Some("counter") => Ok(FlightRecord::Counter {
            path: s("path")?,
            delta: f("delta")?,
            t_s: f("t_s")?,
        }),
        Some("event") => Ok(FlightRecord::Event {
            tag: s("tag")?,
            data: s("data")?,
            t_s: f("t_s")?,
        }),
        other => Err(format!("unknown rec tag {other:?}")),
    }
}

/// One thread's ring as read back from a dump.
#[derive(Debug, Clone, PartialEq)]
pub struct RingDump {
    /// Recording thread label (`name#index`).
    pub thread: String,
    /// Records lost to dump-time contention.
    pub dropped: u64,
    /// Total records ever written to the ring (wraparound included).
    pub written: u64,
    /// Surviving records, oldest first.
    pub records: Vec<FlightRecord>,
}

/// A parsed `fun3d-blackbox/1` dump.
#[derive(Debug, Clone, PartialEq)]
pub struct BlackboxDump {
    /// Per-thread ring capacity the recorder was armed with.
    pub capacity: u64,
    /// Why the dump was taken (`panic`, `anomaly`, `saturation`, `manual`).
    pub reason: String,
    /// One entry per recording thread.
    pub rings: Vec<RingDump>,
}

/// Serialize every ring as `fun3d-blackbox/1` JSONL text.  `None` when the
/// recorder was never armed.
pub fn dump_string(reason: &str) -> Option<String> {
    let st = lock_state();
    let st = st.as_ref()?;
    let mut out = String::new();
    out.push_str(
        &Value::Obj(vec![
            ("schema".into(), Value::Str(SCHEMA.into())),
            ("capacity".into(), Value::Num(st.capacity as f64)),
            ("reason".into(), Value::Str(reason.into())),
            ("rings".into(), Value::Num(st.rings.len() as f64)),
        ])
        .render(),
    );
    out.push('\n');
    for ring in &st.rings {
        // Blocking lock is safe here: writers only try_lock, so they shed
        // onto the dropped counter instead of deadlocking against us.
        let buf = ring.buf.lock().unwrap_or_else(|e| e.into_inner());
        out.push_str(
            &Value::Obj(vec![
                ("ring".into(), Value::Str(ring.thread.clone())),
                (
                    "dropped".into(),
                    Value::Num(ring.dropped.load(Ordering::Relaxed) as f64),
                ),
                ("written".into(), Value::Num(buf.written as f64)),
            ])
            .render(),
        );
        out.push('\n');
        for rec in buf.ordered(ring.capacity) {
            out.push_str(&record_to_json(&rec).render());
            out.push('\n');
        }
    }
    Some(out)
}

/// Write the rings to the path configured at [`arm`] time.  Returns the
/// path on success; `None` when unarmed, no path was configured, or the
/// write failed (a dump must never turn a failing run into a different
/// failure).
pub fn dump_now(reason: &str) -> Option<String> {
    let path = lock_state().as_ref()?.dump_path.clone()?;
    let text = dump_string(reason)?;
    std::fs::write(&path, text).ok()?;
    Some(path)
}

/// Write the rings to an explicit path.
pub fn dump_to(path: &str, reason: &str) -> std::io::Result<()> {
    let text =
        dump_string(reason).ok_or_else(|| std::io::Error::other("flight recorder never armed"))?;
    std::fs::write(path, text)
}

/// Parse `fun3d-blackbox/1` JSONL text (inverse of [`dump_string`]).
pub fn parse_dump(text: &str) -> Result<BlackboxDump, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty blackbox dump")?;
    let hv = Value::parse(header).map_err(|e| format!("bad header: {e}"))?;
    let schema = hv
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("header missing schema field")?;
    if schema != SCHEMA {
        return Err(format!(
            "unsupported schema {schema:?}, expected {SCHEMA:?}"
        ));
    }
    let capacity = hv.get("capacity").and_then(Value::as_f64).unwrap_or(0.0) as u64;
    let reason = hv
        .get("reason")
        .and_then(Value::as_str)
        .unwrap_or("unknown")
        .to_string();
    let mut rings: Vec<RingDump> = Vec::new();
    for (i, line) in lines.enumerate() {
        let v = Value::parse(line).map_err(|e| format!("line {}: {e}", i + 2))?;
        if let Some(thread) = v.get("ring").and_then(Value::as_str) {
            rings.push(RingDump {
                thread: thread.to_string(),
                dropped: v.get("dropped").and_then(Value::as_f64).unwrap_or(0.0) as u64,
                written: v.get("written").and_then(Value::as_f64).unwrap_or(0.0) as u64,
                records: Vec::new(),
            });
        } else {
            let rec = record_from_json(&v).map_err(|e| format!("line {}: {e}", i + 2))?;
            rings
                .last_mut()
                .ok_or_else(|| format!("line {}: record before any ring header", i + 2))?
                .records
                .push(rec);
        }
    }
    Ok(BlackboxDump {
        capacity,
        reason,
        rings,
    })
}

/// Read and parse a dump file.
pub fn read_dump(path: &str) -> std::io::Result<BlackboxDump> {
    let text = std::fs::read_to_string(path)?;
    parse_dump(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global; tests that arm it must not overlap.
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn my_records() -> Vec<FlightRecord> {
        // Only this thread's ring: captures from concurrently running tests
        // land on their own threads' rings.
        with_ring(|_, ring| {
            let buf = ring.buf.lock().unwrap();
            buf.ordered(ring.capacity)
        })
        .unwrap_or_default()
    }

    #[test]
    fn disarmed_recorder_captures_nothing() {
        let _g = guard();
        disarm();
        assert!(!is_armed());
        counter("bb_off/never", 1.0);
        assert!(span_open("bb_off/span").is_none());
    }

    #[test]
    fn ring_wraparound_keeps_most_recent() {
        let _g = guard();
        arm(4, None);
        for i in 0..10 {
            counter("bb_wrap/c", i as f64);
        }
        let recs = my_records();
        disarm();
        assert_eq!(recs.len(), 4);
        let deltas: Vec<f64> = recs
            .iter()
            .map(|r| match r {
                FlightRecord::Counter { delta, .. } => *delta,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(deltas, vec![6.0, 7.0, 8.0, 9.0]);
        // Capture times are monotone oldest-first.
        let ts: Vec<f64> = recs.iter().map(FlightRecord::t_s).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn capacity_edge_cases_hold_property() {
        let _g = guard();
        // Property over tiny capacities and record counts (deterministic
        // LCG stands in for proptest; no external deps): the ring holds the
        // last min(n, cap) records and `written` counts every push.
        let mut lcg: u64 = 0x243F_6A88_85A3_08D3;
        for cap in [0usize, 1, 2, 3, 7] {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            let n = (lcg >> 33) as usize % 23;
            arm(cap, None);
            for i in 0..n {
                counter("bb_prop/c", i as f64);
            }
            let recs = my_records();
            let written = with_ring(|_, ring| ring.buf.lock().unwrap().written).unwrap();
            disarm();
            assert_eq!(written, n as u64, "cap {cap} n {n}");
            assert_eq!(recs.len(), n.min(cap), "cap {cap} n {n}");
            for (k, r) in recs.iter().enumerate() {
                let FlightRecord::Counter { delta, .. } = r else {
                    panic!("unexpected {r:?}")
                };
                assert_eq!(*delta, (n - recs.len() + k) as f64, "cap {cap} n {n}");
            }
        }
    }

    #[test]
    fn concurrent_writers_get_their_own_rings_and_dump_parses() {
        let _g = guard();
        arm(64, None);
        let threads: Vec<_> = (0..3)
            .map(|t| {
                std::thread::Builder::new()
                    .name(format!("bb-writer-{t}"))
                    .spawn(move || {
                        for i in 0..50 {
                            counter(&format!("bb_conc/t{t}"), i as f64);
                        }
                    })
                    .unwrap()
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let text = dump_string("manual").expect("armed recorder dumps");
        disarm();
        let dump = parse_dump(&text).expect("dump parses");
        assert_eq!(dump.reason, "manual");
        assert_eq!(dump.capacity, 64);
        for t in 0..3 {
            let ring = dump
                .rings
                .iter()
                .find(|r| r.thread.starts_with(&format!("bb-writer-{t}#")))
                .unwrap_or_else(|| panic!("missing ring for writer {t}"));
            assert_eq!(ring.written, 50);
            assert_eq!(ring.records.len(), 50);
        }
    }

    #[test]
    fn dump_during_write_never_blocks_writers() {
        let _g = guard();
        arm(32, None);
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("bb-hammer".into())
                .spawn(move || {
                    let mut n: u64 = 0;
                    while !stop.load(Ordering::Relaxed) {
                        counter("bb_dump/hammer", n as f64);
                        n += 1;
                    }
                    n
                })
                .unwrap()
        };
        // Dump repeatedly while the writer hammers its ring.
        let mut last = String::new();
        for _ in 0..20 {
            last = dump_string("manual").unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let pushed = writer.join().unwrap();
        assert!(pushed > 0, "writer made progress under concurrent dumps");
        let dump = parse_dump(&last).expect("mid-write dump parses");
        // written + dropped accounts for every push attempt seen so far.
        let ring = dump
            .rings
            .iter()
            .find(|r| r.thread.starts_with("bb-hammer#"))
            .expect("hammer ring present");
        assert!(ring.written + ring.dropped <= pushed);
        disarm();
    }

    #[test]
    fn rearm_resets_rings_and_file_round_trips() {
        let _g = guard();
        arm(8, None);
        counter("bb_old/stale", 1.0);
        arm(8, None); // discard
        counter("bb_new/fresh", 2.0);
        {
            let _s = span_open("bb_new/span").map(span_close);
        }
        event("newton_step", r#"{"ev":"newton_step","step":1}"#.into());
        let path = std::env::temp_dir().join("fun3d_blackbox_test.jsonl");
        let path = path.to_str().unwrap();
        dump_to(path, "manual").unwrap();
        disarm();
        let dump = read_dump(path).unwrap();
        std::fs::remove_file(path).ok();
        let recs: Vec<&FlightRecord> = dump.rings.iter().flat_map(|r| &r.records).collect();
        assert!(recs.iter().all(|r| !matches!(
            r,
            FlightRecord::Counter { path, .. } if path == "bb_old/stale"
        )));
        assert!(recs
            .iter()
            .any(|r| matches!(r, FlightRecord::Counter { path, .. } if path == "bb_new/fresh")));
        assert!(recs
            .iter()
            .any(|r| matches!(r, FlightRecord::Span { path, .. } if path == "bb_new/span")));
        assert!(recs.iter().any(
            |r| matches!(r, FlightRecord::Event { tag, data, .. } if tag == "newton_step"
                && data.contains("\"step\":1"))
        ));
    }

    #[test]
    fn parse_rejects_malformed_dumps() {
        assert!(parse_dump("").is_err());
        assert!(parse_dump("{\"schema\":\"fun3d-blackbox/999\"}\n").is_err());
        let no_ring = format!(
            "{}\n{}\n",
            r#"{"schema":"fun3d-blackbox/1","capacity":4,"reason":"manual","rings":1}"#,
            r#"{"rec":"counter","path":"x","delta":1,"t_s":0}"#
        );
        assert!(parse_dump(&no_ring).is_err(), "record before ring header");
        let bad_rec = format!(
            "{}\n{}\n{}\n",
            r#"{"schema":"fun3d-blackbox/1","capacity":4,"reason":"manual","rings":1}"#,
            r#"{"ring":"main#0","dropped":0,"written":1}"#,
            r#"{"rec":"bogus"}"#
        );
        assert!(parse_dump(&bad_rec).is_err());
        // Header alone is a valid empty dump.
        let empty = parse_dump(
            "{\"schema\":\"fun3d-blackbox/1\",\"capacity\":4,\"reason\":\"panic\",\"rings\":0}\n",
        )
        .unwrap();
        assert!(empty.rings.is_empty());
        assert_eq!(empty.reason, "panic");
    }
}
