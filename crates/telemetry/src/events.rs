//! `fun3d-events/1`: a structured, append-only event stream.
//!
//! Span aggregates (the `fun3d-perf/1` report) answer "how much time went
//! where"; this module answers "what happened, step by step".  The paper's
//! central artifacts are per-iteration series — Figure 5 plots residual norm
//! and CFL against pseudo-timestep, Table 3 needs per-phase times — so the
//! solver, the Krylov loop, the scatter layer, and the driver each emit
//! typed records into an [`EventSink`], and the resulting [`EventStream`]
//! serializes to a stable JSONL schema (`fun3d-events/1`) that
//! `fun3d-report` renders back into convergence tables.
//!
//! The sink mirrors [`crate::Registry`]'s shape: a `const`-constructible
//! disabled form whose `emit` is one branch, so hot loops keep their
//! callsites at near-zero cost when event capture is off.

use crate::json::Value;
use std::sync::{Arc, Mutex};

/// Schema identifier written as the JSONL header line.
pub const SCHEMA: &str = "fun3d-events/1";

/// One typed event in a run's stream.
#[derive(Debug, Clone, PartialEq)]
pub enum EventRecord {
    /// Identifies the run (or sub-run) the following events belong to.
    RunMeta {
        /// Run label, e.g. the experiment or case name.
        name: String,
        /// Free-form string metadata (mesh size, rank count, ...).
        meta: Vec<(String, String)>,
    },
    /// One pseudo-timestep of the ΨNKS outer loop (one Figure 5 row).
    NewtonStep {
        /// Pseudo-timestep index, starting at 0.
        step: u64,
        /// Nonlinear residual norm after the step.
        residual_norm: f64,
        /// CFL number used for the step (SER continuation).
        cfl: f64,
        /// Linear iterations the step's GMRES solve used.
        gmres_iters: u64,
        /// Linear forcing tolerance (Eisenstat–Walker η) for the step.
        eta: f64,
        /// Seconds in residual/function evaluation.
        t_residual: f64,
        /// Seconds in Jacobian formation.
        t_jacobian: f64,
        /// Seconds in preconditioner factorization.
        t_precond: f64,
        /// Seconds in the Krylov solve.
        t_krylov: f64,
    },
    /// One inner Krylov iteration (GMRES residual-estimate trajectory).
    KrylovIter {
        /// Enclosing pseudo-timestep index.
        step: u64,
        /// Cumulative Krylov iteration within the solve (restarts included).
        iter: u64,
        /// Preconditioned residual-norm estimate after the iteration.
        residual_norm: f64,
    },
    /// One ghost-exchange scatter on a rank.
    Scatter {
        /// Bytes moved (sends plus received ghosts).
        bytes: u64,
        /// Neighbor ranks exchanged with.
        neighbors: u64,
        /// Measured seconds for the exchange.
        t: f64,
    },
    /// A solver state checkpoint written to disk.
    Checkpoint {
        /// Pseudo-timestep the checkpoint captures.
        step: u64,
        /// File path it was written to.
        path: String,
    },
    /// One served request's end-to-end trace: where its latency went, from
    /// admission to response.  The segments partition the latency exactly:
    /// `t_queue_s + t_batch_s + t_solve_s + t_respond_s = latency_s` (up to
    /// float rounding), so a stream of these reconstructs the live serving
    /// timeline request by request.
    RequestTrace {
        /// Request id — the trace id propagated queue → batch → worker.
        id: u64,
        /// Worker index that served the request (its trace lane).
        worker: u64,
        /// Size of the same-family batch the request rode in.
        batch_size: u64,
        /// Whether the family state came from the cache.
        cache_hit: bool,
        /// Seconds from admission to batch pickup (queue wait).
        t_queue_s: f64,
        /// Seconds from batch pickup to this solve's start: shared state
        /// acquisition plus earlier same-batch solves (batch assembly).
        t_batch_s: f64,
        /// Seconds acquiring the family state, attributed to the batch's
        /// first request (0 for the rest).
        t_setup_s: f64,
        /// Seconds in the ΨNKS solve.
        t_solve_s: f64,
        /// Seconds fingerprinting and delivering the response.
        t_respond_s: f64,
        /// End-to-end seconds from admission to response.
        latency_s: f64,
    },
    /// A solver health anomaly detected in-process by the health monitor:
    /// the step where the solve went wrong and why it was aborted.
    Anomaly {
        /// Stable anomaly class tag (`non_finite_residual`, `divergence`,
        /// `stagnation`, `cfl_breakdown`).
        kind: String,
        /// Pseudo-timestep the anomaly was detected at.
        step: u64,
        /// Residual norm at detection.  May be NaN (serialized as JSON
        /// `null` and parsed back to NaN).
        residual_norm: f64,
        /// Human-readable evidence (window sizes, thresholds crossed).
        detail: String,
    },
    /// Aggregated fun3d-profile timings for one parallel region at one team
    /// size — the shared-memory imbalance accounting of Table 3.
    ParRegion {
        /// Stable region label (e.g. `spmv_csr`, `residual_flux`).
        label: String,
        /// Thread-team size the region ran with.
        nthreads: u64,
        /// Fork/join invocations aggregated into this record.
        invocations: u64,
        /// Total fork-to-join wall seconds.
        wall_s: f64,
        /// Busiest thread's total seconds.
        busy_max_s: f64,
        /// Mean busy seconds over all team slots.
        busy_mean_s: f64,
        /// Idle team-seconds: `nthreads * wall - sum(busy)`.
        join_wait_s: f64,
        /// Load imbalance factor `busy_max / busy_mean` (1.0 = balanced).
        imbalance: f64,
    },
}

/// A cheaply-cloneable handle events are emitted into.
///
/// Mirrors [`crate::Registry`]: [`EventSink::disabled`] is `const` and makes
/// [`EventSink::emit`] a single `Option` check, so instrumented hot paths
/// cost nothing when capture is off.
#[derive(Debug, Clone, Default)]
pub struct EventSink {
    inner: Option<Arc<Mutex<Vec<EventRecord>>>>,
}

impl EventSink {
    /// An enabled sink that records every emitted event.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(Vec::new()))),
        }
    }

    /// A no-op sink: `emit` costs one branch.
    pub const fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Append one event (no-op on a disabled sink).  An armed flight
    /// recorder captures the event even through a disabled sink, so a
    /// production run with event capture off still leaves its last
    /// iterations in the black box.
    pub fn emit(&self, ev: EventRecord) {
        if crate::blackbox::is_armed() {
            let v = record_to_json(&ev);
            let tag = v.get("ev").and_then(Value::as_str).unwrap_or("?");
            crate::blackbox::event(tag, v.render());
        }
        if let Some(arc) = &self.inner {
            arc.lock().unwrap_or_else(|e| e.into_inner()).push(ev);
        }
    }

    /// Take every recorded event out of the sink, leaving it empty (and
    /// still enabled).  A disabled sink drains to nothing.
    pub fn drain(&self) -> Vec<EventRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(arc) => std::mem::take(&mut *arc.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }
}

/// An ordered sequence of events, the unit of serialization.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventStream {
    /// Events in emission order.
    pub records: Vec<EventRecord>,
}

impl EventStream {
    /// A stream over the given records.
    pub fn new(records: Vec<EventRecord>) -> Self {
        Self { records }
    }

    /// Whether the stream holds no events.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The `NewtonStep` records, in order.
    pub fn newton_steps(&self) -> Vec<&EventRecord> {
        self.records
            .iter()
            .filter(|r| matches!(r, EventRecord::NewtonStep { .. }))
            .collect()
    }

    /// Serialize as `fun3d-events/1` JSONL: a schema header line followed by
    /// one compact JSON object per event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&Value::Obj(vec![("schema".into(), Value::Str(SCHEMA.into()))]).render());
        out.push('\n');
        for r in &self.records {
            out.push_str(&record_to_json(r).render());
            out.push('\n');
        }
        out
    }

    /// Parse `fun3d-events/1` JSONL text (inverse of [`EventStream::to_jsonl`]).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty event stream")?;
        let hv = Value::parse(header).map_err(|e| format!("bad header: {e}"))?;
        let schema = hv
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("header missing schema field")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?}, expected {SCHEMA:?}"
            ));
        }
        let mut records = Vec::new();
        for (i, line) in lines.enumerate() {
            let v = Value::parse(line).map_err(|e| format!("line {}: {e}", i + 2))?;
            records.push(record_from_json(&v).map_err(|e| format!("line {}: {e}", i + 2))?);
        }
        Ok(Self { records })
    }

    /// Write the stream to `path` as JSONL.
    pub fn write_jsonl(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Read a stream from a JSONL file.
    pub fn read_jsonl(path: &str) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Integer fields ride in JSON numbers; everything emitted here is far
/// below 2^53, so the f64 round trip is exact.
fn num_u64(x: u64) -> Value {
    Value::Num(x as f64)
}

fn record_to_json(r: &EventRecord) -> Value {
    match r {
        EventRecord::RunMeta { name, meta } => Value::Obj(vec![
            ("ev".into(), Value::Str("run_meta".into())),
            ("name".into(), Value::Str(name.clone())),
            (
                "meta".into(),
                Value::Obj(
                    meta.iter()
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ),
        ]),
        EventRecord::NewtonStep {
            step,
            residual_norm,
            cfl,
            gmres_iters,
            eta,
            t_residual,
            t_jacobian,
            t_precond,
            t_krylov,
        } => Value::Obj(vec![
            ("ev".into(), Value::Str("newton_step".into())),
            ("step".into(), num_u64(*step)),
            ("residual_norm".into(), Value::Num(*residual_norm)),
            ("cfl".into(), Value::Num(*cfl)),
            ("gmres_iters".into(), num_u64(*gmres_iters)),
            ("eta".into(), Value::Num(*eta)),
            ("t_residual".into(), Value::Num(*t_residual)),
            ("t_jacobian".into(), Value::Num(*t_jacobian)),
            ("t_precond".into(), Value::Num(*t_precond)),
            ("t_krylov".into(), Value::Num(*t_krylov)),
        ]),
        EventRecord::KrylovIter {
            step,
            iter,
            residual_norm,
        } => Value::Obj(vec![
            ("ev".into(), Value::Str("krylov_iter".into())),
            ("step".into(), num_u64(*step)),
            ("iter".into(), num_u64(*iter)),
            ("residual_norm".into(), Value::Num(*residual_norm)),
        ]),
        EventRecord::Scatter {
            bytes,
            neighbors,
            t,
        } => Value::Obj(vec![
            ("ev".into(), Value::Str("scatter".into())),
            ("bytes".into(), num_u64(*bytes)),
            ("neighbors".into(), num_u64(*neighbors)),
            ("t".into(), Value::Num(*t)),
        ]),
        EventRecord::Checkpoint { step, path } => Value::Obj(vec![
            ("ev".into(), Value::Str("checkpoint".into())),
            ("step".into(), num_u64(*step)),
            ("path".into(), Value::Str(path.clone())),
        ]),
        EventRecord::RequestTrace {
            id,
            worker,
            batch_size,
            cache_hit,
            t_queue_s,
            t_batch_s,
            t_setup_s,
            t_solve_s,
            t_respond_s,
            latency_s,
        } => Value::Obj(vec![
            ("ev".into(), Value::Str("request_trace".into())),
            ("id".into(), num_u64(*id)),
            ("worker".into(), num_u64(*worker)),
            ("batch_size".into(), num_u64(*batch_size)),
            ("cache_hit".into(), Value::Bool(*cache_hit)),
            ("t_queue_s".into(), Value::Num(*t_queue_s)),
            ("t_batch_s".into(), Value::Num(*t_batch_s)),
            ("t_setup_s".into(), Value::Num(*t_setup_s)),
            ("t_solve_s".into(), Value::Num(*t_solve_s)),
            ("t_respond_s".into(), Value::Num(*t_respond_s)),
            ("latency_s".into(), Value::Num(*latency_s)),
        ]),
        EventRecord::Anomaly {
            kind,
            step,
            residual_norm,
            detail,
        } => Value::Obj(vec![
            ("ev".into(), Value::Str("anomaly".into())),
            ("kind".into(), Value::Str(kind.clone())),
            ("step".into(), num_u64(*step)),
            ("residual_norm".into(), Value::Num(*residual_norm)),
            ("detail".into(), Value::Str(detail.clone())),
        ]),
        EventRecord::ParRegion {
            label,
            nthreads,
            invocations,
            wall_s,
            busy_max_s,
            busy_mean_s,
            join_wait_s,
            imbalance,
        } => Value::Obj(vec![
            ("ev".into(), Value::Str("par_region".into())),
            ("label".into(), Value::Str(label.clone())),
            ("nthreads".into(), num_u64(*nthreads)),
            ("invocations".into(), num_u64(*invocations)),
            ("wall_s".into(), Value::Num(*wall_s)),
            ("busy_max_s".into(), Value::Num(*busy_max_s)),
            ("busy_mean_s".into(), Value::Num(*busy_mean_s)),
            ("join_wait_s".into(), Value::Num(*join_wait_s)),
            ("imbalance".into(), Value::Num(*imbalance)),
        ]),
    }
}

fn field(v: &Value, key: &str) -> Result<f64, String> {
    match v.get(key) {
        None => Err(format!("missing/invalid field {key:?}")),
        // `null` is how the writer serializes non-finite floats, so the
        // faithful inverse is NaN (an anomaly's residual can be NaN).
        Some(Value::Null) => Ok(f64::NAN),
        Some(x) => x
            .as_f64()
            .ok_or_else(|| format!("missing/invalid field {key:?}")),
    }
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    Ok(field(v, key)? as u64)
}

fn record_from_json(v: &Value) -> Result<EventRecord, String> {
    let tag = v
        .get("ev")
        .and_then(Value::as_str)
        .ok_or("event missing ev tag")?;
    match tag {
        "run_meta" => Ok(EventRecord::RunMeta {
            name: v
                .get("name")
                .and_then(Value::as_str)
                .ok_or("run_meta missing name")?
                .to_string(),
            meta: v
                .get("meta")
                .and_then(Value::as_obj)
                .unwrap_or(&[])
                .iter()
                .map(|(k, val)| {
                    val.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("meta entry {k:?} is not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
        }),
        "newton_step" => Ok(EventRecord::NewtonStep {
            step: field_u64(v, "step")?,
            residual_norm: field(v, "residual_norm")?,
            cfl: field(v, "cfl")?,
            gmres_iters: field_u64(v, "gmres_iters")?,
            eta: field(v, "eta")?,
            t_residual: field(v, "t_residual")?,
            t_jacobian: field(v, "t_jacobian")?,
            t_precond: field(v, "t_precond")?,
            t_krylov: field(v, "t_krylov")?,
        }),
        "krylov_iter" => Ok(EventRecord::KrylovIter {
            step: field_u64(v, "step")?,
            iter: field_u64(v, "iter")?,
            residual_norm: field(v, "residual_norm")?,
        }),
        "scatter" => Ok(EventRecord::Scatter {
            bytes: field_u64(v, "bytes")?,
            neighbors: field_u64(v, "neighbors")?,
            t: field(v, "t")?,
        }),
        "checkpoint" => Ok(EventRecord::Checkpoint {
            step: field_u64(v, "step")?,
            path: v
                .get("path")
                .and_then(Value::as_str)
                .ok_or("checkpoint missing path")?
                .to_string(),
        }),
        "request_trace" => Ok(EventRecord::RequestTrace {
            id: field_u64(v, "id")?,
            worker: field_u64(v, "worker")?,
            batch_size: field_u64(v, "batch_size")?,
            cache_hit: match v.get("cache_hit") {
                Some(Value::Bool(b)) => *b,
                _ => return Err("request_trace missing/invalid cache_hit".into()),
            },
            t_queue_s: field(v, "t_queue_s")?,
            t_batch_s: field(v, "t_batch_s")?,
            t_setup_s: field(v, "t_setup_s")?,
            t_solve_s: field(v, "t_solve_s")?,
            t_respond_s: field(v, "t_respond_s")?,
            latency_s: field(v, "latency_s")?,
        }),
        "anomaly" => Ok(EventRecord::Anomaly {
            kind: v
                .get("kind")
                .and_then(Value::as_str)
                .ok_or("anomaly missing kind")?
                .to_string(),
            step: field_u64(v, "step")?,
            residual_norm: field(v, "residual_norm")?,
            detail: v
                .get("detail")
                .and_then(Value::as_str)
                .ok_or("anomaly missing detail")?
                .to_string(),
        }),
        "par_region" => Ok(EventRecord::ParRegion {
            label: v
                .get("label")
                .and_then(Value::as_str)
                .ok_or("par_region missing label")?
                .to_string(),
            nthreads: field_u64(v, "nthreads")?,
            invocations: field_u64(v, "invocations")?,
            wall_s: field(v, "wall_s")?,
            busy_max_s: field(v, "busy_max_s")?,
            busy_mean_s: field(v, "busy_mean_s")?,
            join_wait_s: field(v, "join_wait_s")?,
            imbalance: field(v, "imbalance")?,
        }),
        other => Err(format!("unknown event tag {other:?}")),
    }
}

/// Render a Figure 5-style convergence table from a stream's `NewtonStep`
/// records.  A stream may hold several series (sub-runs separated by
/// `RunMeta` records, or a step index that resets); each series gets its
/// own block.  Long series are strided down to ~24 rows, keeping first and
/// last.
pub fn convergence_table(stream: &EventStream) -> String {
    use std::fmt::Write as _;

    struct Series<'a> {
        label: String,
        steps: Vec<&'a EventRecord>,
    }
    let mut series: Vec<Series> = Vec::new();
    let mut pending_label: Option<String> = None;
    for r in &stream.records {
        match r {
            EventRecord::RunMeta { name, .. } => pending_label = Some(name.clone()),
            EventRecord::NewtonStep { step, .. } => {
                let new_series = pending_label.is_some()
                    || series.is_empty()
                    || series.last().is_some_and(|s| {
                        s.steps.last().is_some_and(|last| {
                            matches!(last, EventRecord::NewtonStep { step: prev, .. } if step < prev)
                        })
                    });
                if new_series {
                    series.push(Series {
                        label: pending_label.take().unwrap_or_default(),
                        steps: Vec::new(),
                    });
                }
                series.last_mut().expect("just pushed").steps.push(r);
            }
            _ => {}
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Convergence (Figure 5): residual norm and CFL vs pseudo-timestep"
    );
    if series.is_empty() {
        let _ = writeln!(out, "  (no newton_step events in stream)");
        return out;
    }
    for s in &series {
        if !s.label.is_empty() {
            let _ = writeln!(out, "\n  series: {}", s.label);
        }
        let _ = writeln!(
            out,
            "  {:>5} {:>12} {:>10} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "step", "|R|", "CFL", "lin its", "eta", "t_res", "t_jac", "t_pc", "t_kry"
        );
        let n = s.steps.len();
        let stride = n.div_ceil(24).max(1);
        for (i, r) in s.steps.iter().enumerate() {
            if i % stride != 0 && i != n - 1 {
                continue;
            }
            if let EventRecord::NewtonStep {
                step,
                residual_norm,
                cfl,
                gmres_iters,
                eta,
                t_residual,
                t_jacobian,
                t_precond,
                t_krylov,
            } = r
            {
                let _ = writeln!(
                    out,
                    "  {step:>5} {residual_norm:>12.4e} {cfl:>10.2} {gmres_iters:>8} \
                     {eta:>9.2e} {t_residual:>9.2e} {t_jacobian:>9.2e} {t_precond:>9.2e} \
                     {t_krylov:>9.2e}"
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> EventStream {
        EventStream::new(vec![
            EventRecord::RunMeta {
                name: "unit".into(),
                meta: vec![("nverts".into(), "100".into())],
            },
            EventRecord::NewtonStep {
                step: 0,
                residual_norm: 1.0,
                cfl: 10.0,
                gmres_iters: 8,
                eta: 0.01,
                t_residual: 0.125,
                t_jacobian: 0.25,
                t_precond: 0.0625,
                t_krylov: 0.5,
            },
            EventRecord::KrylovIter {
                step: 0,
                iter: 1,
                residual_norm: 0.5,
            },
            EventRecord::Scatter {
                bytes: 4096,
                neighbors: 3,
                t: 1e-5,
            },
            EventRecord::NewtonStep {
                step: 1,
                residual_norm: 1.0 / 3.0,
                cfl: 30.0,
                gmres_iters: 6,
                eta: 0.01,
                t_residual: 0.125,
                t_jacobian: 0.25,
                t_precond: 0.0625,
                t_krylov: 0.375,
            },
            EventRecord::Checkpoint {
                step: 1,
                path: "/tmp/ck.bin".into(),
            },
            EventRecord::ParRegion {
                label: "spmv_csr".into(),
                nthreads: 2,
                invocations: 7,
                wall_s: 0.5,
                busy_max_s: 0.45,
                busy_mean_s: 0.4,
                join_wait_s: 0.2,
                imbalance: 1.125,
            },
            EventRecord::RequestTrace {
                id: 42,
                worker: 1,
                batch_size: 3,
                cache_hit: true,
                t_queue_s: 0.5,
                t_batch_s: 0.125,
                t_setup_s: 0.0625,
                t_solve_s: 0.25,
                t_respond_s: 0.125,
                latency_s: 1.0,
            },
            EventRecord::Anomaly {
                kind: "stagnation".into(),
                step: 7,
                residual_norm: 0.25,
                detail: "plateau over 10 steps".into(),
            },
        ])
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let s = sample_stream();
        let text = s.to_jsonl();
        let back = EventStream::parse(&text).unwrap();
        assert_eq!(s, back);
        // The JSONL text itself is a fixed point.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn schema_is_enforced() {
        assert!(EventStream::parse("").is_err());
        assert!(EventStream::parse("{\"schema\":\"fun3d-events/999\"}\n").is_err());
        assert!(
            EventStream::parse("{\"schema\":\"fun3d-events/1\"}\n{\"ev\":\"bogus\"}\n").is_err()
        );
        // Header alone is a valid empty stream.
        let empty = EventStream::parse("{\"schema\":\"fun3d-events/1\"}\n").unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn sink_enabled_and_disabled() {
        let off = EventSink::disabled();
        off.emit(EventRecord::KrylovIter {
            step: 0,
            iter: 1,
            residual_norm: 0.5,
        });
        assert!(!off.is_enabled());
        assert!(off.drain().is_empty());

        let on = EventSink::enabled();
        on.emit(EventRecord::KrylovIter {
            step: 0,
            iter: 1,
            residual_norm: 0.5,
        });
        let drained = on.drain();
        assert_eq!(drained.len(), 1);
        // Drain empties but keeps recording.
        assert!(on.drain().is_empty());
        on.emit(EventRecord::KrylovIter {
            step: 1,
            iter: 2,
            residual_norm: 0.25,
        });
        assert_eq!(on.drain().len(), 1);
    }

    #[test]
    fn file_round_trip() {
        let s = sample_stream();
        let path = std::env::temp_dir().join("fun3d_events_test.jsonl");
        let path = path.to_str().unwrap();
        s.write_jsonl(path).unwrap();
        let back = EventStream::read_jsonl(path).unwrap();
        std::fs::remove_file(path).ok();
        assert_eq!(s, back);
    }

    #[test]
    fn convergence_table_renders_steps() {
        let s = sample_stream();
        let txt = convergence_table(&s);
        assert!(txt.starts_with("Convergence (Figure 5)"));
        assert!(txt.contains("series: unit"));
        assert!(txt.contains("lin its"));
        // Both steps appear.
        assert!(txt.contains("1.0000e0") || txt.contains("1.0000e+0") || txt.contains("1e0"));
        assert_eq!(s.newton_steps().len(), 2);
    }

    #[test]
    fn convergence_table_splits_series_on_step_reset() {
        let mk = |step: u64, r: f64| EventRecord::NewtonStep {
            step,
            residual_norm: r,
            cfl: 1.0,
            gmres_iters: 1,
            eta: 0.1,
            t_residual: 0.0,
            t_jacobian: 0.0,
            t_precond: 0.0,
            t_krylov: 0.0,
        };
        let s = EventStream::new(vec![mk(0, 1.0), mk(1, 0.5), mk(0, 2.0), mk(1, 1.0)]);
        let txt = convergence_table(&s);
        // Two header rows: one per series.
        assert_eq!(txt.matches("lin its").count(), 2);
    }

    #[test]
    fn request_trace_round_trips_and_legacy_streams_still_parse() {
        // The serving trace record must survive the JSONL round trip with
        // its boolean and every segment intact...
        let s = EventStream::new(vec![EventRecord::RequestTrace {
            id: 7,
            worker: 0,
            batch_size: 1,
            cache_hit: false,
            t_queue_s: 1e-4,
            t_batch_s: 2e-4,
            t_setup_s: 2e-4,
            t_solve_s: 3e-3,
            t_respond_s: 1e-5,
            latency_s: 3.31e-3,
        }]);
        let back = EventStream::parse(&s.to_jsonl()).unwrap();
        assert_eq!(back, s);
        // ...a malformed cache_hit must be named, not coerced...
        let bad = format!(
            "{}\n{}\n",
            r#"{"schema":"fun3d-events/1"}"#,
            r#"{"ev":"request_trace","id":1,"worker":0,"batch_size":1,"cache_hit":"yes","t_queue_s":0,"t_batch_s":0,"t_setup_s":0,"t_solve_s":0,"t_respond_s":0,"latency_s":0}"#,
        );
        assert!(EventStream::parse(&bad).is_err());
        // ...and streams written before serving tracing existed (no
        // request_trace lines at all) keep parsing unchanged.
        let legacy = format!(
            "{}\n{}\n",
            r#"{"schema":"fun3d-events/1"}"#,
            r#"{"ev":"scatter","bytes":64,"neighbors":1,"t":1e-6}"#,
        );
        assert!(EventStream::parse(&legacy).is_ok());
    }

    #[test]
    fn anomaly_with_nan_residual_round_trips_via_null() {
        // A NaN residual is exactly what a non_finite_residual anomaly
        // carries; it serializes as JSON null and must parse back to NaN
        // instead of failing the whole stream.
        let s = EventStream::new(vec![EventRecord::Anomaly {
            kind: "non_finite_residual".into(),
            step: 3,
            residual_norm: f64::NAN,
            detail: "residual became NaN".into(),
        }]);
        let text = s.to_jsonl();
        assert!(text.contains("\"residual_norm\":null"), "{text}");
        let back = EventStream::parse(&text).unwrap();
        let EventRecord::Anomaly {
            kind,
            step,
            residual_norm,
            ..
        } = &back.records[0]
        else {
            panic!("expected anomaly");
        };
        assert_eq!(kind, "non_finite_residual");
        assert_eq!(*step, 3);
        assert!(residual_norm.is_nan());
        // A NaN newton_step (the record that triggered the anomaly) must
        // also survive parsing rather than poisoning the file.
        let ns = format!(
            "{}\n{}\n",
            r#"{"schema":"fun3d-events/1"}"#,
            r#"{"ev":"newton_step","step":1,"residual_norm":null,"cfl":10,"gmres_iters":2,"eta":0.1,"t_residual":0,"t_jacobian":0,"t_precond":0,"t_krylov":0}"#,
        );
        let parsed = EventStream::parse(&ns).unwrap();
        let EventRecord::NewtonStep { residual_norm, .. } = &parsed.records[0] else {
            panic!("expected newton_step");
        };
        assert!(residual_norm.is_nan());
        // Streams written before anomalies existed keep parsing unchanged.
        let legacy = format!(
            "{}\n{}\n",
            r#"{"schema":"fun3d-events/1"}"#,
            r#"{"ev":"krylov_iter","step":0,"iter":1,"residual_norm":0.5}"#,
        );
        assert!(EventStream::parse(&legacy).is_ok());
    }

    #[test]
    fn run_meta_without_rank_keys_still_parses() {
        // Streams written before rank tracing existed carry run_meta lines
        // whose meta object has no `nranks`/`partition` keys.  The meta map
        // is free-form, so such files must keep parsing unchanged — and new
        // files with the rank keys must round-trip losslessly.
        let legacy = format!(
            "{}\n{}\n",
            r#"{"schema":"fun3d-events/1"}"#,
            r#"{"ev":"run_meta","name":"table3","meta":{"nverts":"9000","scale":"0.1"}}"#,
        );
        let s = EventStream::parse(&legacy).expect("pre-rank-trace stream parses");
        let EventRecord::RunMeta { name, meta } = &s.records[0] else {
            panic!("expected run_meta");
        };
        assert_eq!(name, "table3");
        assert!(meta.iter().all(|(k, _)| k != "nranks"));

        let modern = EventStream::new(vec![EventRecord::RunMeta {
            name: "ranks".into(),
            meta: vec![
                ("nranks".into(), "16".into()),
                ("partition".into(), "kway".into()),
            ],
        }]);
        let round = EventStream::parse(&modern.to_jsonl()).unwrap();
        assert_eq!(round, modern);
    }
}
