//! Streaming log-bucket latency histograms.
//!
//! Every span accumulates one of these alongside its call count and total
//! time, so reports can carry p50/p95/p99 columns and the harness can gate
//! on tail latency, not just medians.  The bucket layout is *fixed and
//! global* — [`BUCKETS_PER_OCTAVE`] buckets per power of two between
//! `2^MIN_EXP` and `2^MAX_EXP` seconds — so merging histograms from
//! different ranks is pure integer addition of counts: order-independent,
//! deterministic, and parameter-free.
//!
//! Quantiles are nearest-rank estimates returned at the geometric midpoint
//! of the selected bucket; with 4 buckets per octave the worst-case relative
//! error of any reported quantile is `2^(1/8) - 1` ≈ 9% per side (≈ 19%
//! bucket width), which is far below the harness's default 20% relative
//! gating band.

/// Log-scale resolution: buckets per power of two.
pub const BUCKETS_PER_OCTAVE: u32 = 4;
/// Smallest representable exponent: `2^-30` s ≈ 0.93 ns.
pub const MIN_EXP: i32 = -30;
/// Largest representable exponent: `2^16` s ≈ 18 hours.
pub const MAX_EXP: i32 = 16;
/// Total number of addressable buckets.
pub const NBUCKETS: u32 = (MAX_EXP - MIN_EXP) as u32 * BUCKETS_PER_OCTAVE;

/// A sparse log-bucket histogram of durations in seconds.
///
/// Storage is a sorted `(bucket_index, count)` list: most spans see a
/// handful of distinct latency scales, so the sparse form stays tiny while
/// still addressing 46 octaves of dynamic range.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogHistogram {
    /// Sorted, deduplicated `(bucket, count)` pairs with `count > 0`.
    buckets: Vec<(u32, u64)>,
}

/// Map a duration in seconds to its bucket index (clamped to the range).
fn bucket_of(seconds: f64) -> u32 {
    if seconds.is_nan() || seconds <= 0.0 || !seconds.is_finite() {
        return 0;
    }
    let idx = ((seconds.log2() - MIN_EXP as f64) * BUCKETS_PER_OCTAVE as f64).floor();
    if idx < 0.0 {
        0
    } else if idx >= NBUCKETS as f64 {
        NBUCKETS - 1
    } else {
        idx as u32
    }
}

/// Geometric midpoint (in seconds) of a bucket.
fn midpoint_of(bucket: u32) -> f64 {
    let exp = MIN_EXP as f64 + (bucket as f64 + 0.5) / BUCKETS_PER_OCTAVE as f64;
    exp.exp2()
}

impl LogHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: Vec::new(),
        }
    }

    /// Record one duration.
    pub fn record(&mut self, seconds: f64) {
        self.record_n(seconds, 1);
    }

    /// Record `n` durations of the same value (used when ingesting
    /// pre-aggregated spans where only `total_s / calls` is known).
    pub fn record_n(&mut self, seconds: f64, n: u64) {
        if n == 0 {
            return;
        }
        let b = bucket_of(seconds);
        match self.buckets.binary_search_by_key(&b, |&(i, _)| i) {
            Ok(at) => self.buckets[at].1 += n,
            Err(at) => self.buckets.insert(at, (b, n)),
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|&(_, c)| c).sum()
    }

    /// Whether anything has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Add every sample of `other` into `self`.  Pure integer addition of
    /// bucket counts, so the result is independent of merge order.
    pub fn merge(&mut self, other: &LogHistogram) {
        for &(b, c) in &other.buckets {
            match self.buckets.binary_search_by_key(&b, |&(i, _)| i) {
                Ok(at) => self.buckets[at].1 += c,
                Err(at) => self.buckets.insert(at, (b, c)),
            }
        }
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`), returned at the geometric
    /// midpoint of the selected bucket; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(b, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return Some(midpoint_of(b));
            }
        }
        self.buckets.last().map(|&(b, _)| midpoint_of(b))
    }

    /// The samples recorded since an earlier snapshot of the same cumulative
    /// histogram: per-bucket saturating subtraction of `earlier`'s counts.
    /// Because the bucket layout is fixed and counts only grow, the result
    /// is *exactly* the histogram of the samples recorded in the window —
    /// windowed quantiles cost two snapshots and one integer diff, never a
    /// re-record of the raw samples.
    pub fn since(&self, earlier: &LogHistogram) -> LogHistogram {
        let mut out = LogHistogram::new();
        for &(b, c) in &self.buckets {
            let prev = earlier
                .buckets
                .binary_search_by_key(&b, |&(i, _)| i)
                .map(|at| earlier.buckets[at].1)
                .unwrap_or(0);
            let delta = c.saturating_sub(prev);
            if delta > 0 {
                out.buckets.push((b, delta));
            }
        }
        out
    }

    /// The sorted `(bucket, count)` pairs, for serialization.
    pub fn buckets(&self) -> &[(u32, u64)] {
        &self.buckets
    }

    /// Rebuild from serialized `(bucket, count)` pairs.  Pairs are
    /// validated: out-of-range buckets or zero counts are rejected, and
    /// unsorted/duplicated input is normalized by summation.
    pub fn from_buckets(pairs: &[(u32, u64)]) -> Result<Self, String> {
        let mut h = Self::new();
        for &(b, c) in pairs {
            if b >= NBUCKETS {
                return Err(format!("histogram bucket {b} out of range 0..{NBUCKETS}"));
            }
            if c == 0 {
                return Err("histogram bucket with zero count".into());
            }
            match h.buckets.binary_search_by_key(&b, |&(i, _)| i) {
                Ok(at) => h.buckets[at].1 += c,
                Err(at) => h.buckets.insert(at, (b, c)),
            }
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_quantiles() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        // Every quantile of an empty histogram is None — never NaN, never a
        // panic — including the q=0/q=1 edges and out-of-range inputs.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0, -1.0, 2.0, f64::NAN] {
            assert_eq!(h.quantile(q), None, "q={q}");
        }
    }

    #[test]
    fn single_sample_defines_every_quantile() {
        let mut h = LogHistogram::new();
        h.record(1e-3);
        assert_eq!(h.count(), 1);
        // With one sample the nearest rank is 1 for every q (ceil(q*1)
        // clamped up to 1), so p0 through p100 all land on that sample's
        // bucket midpoint: well-defined, finite, and mutually equal.
        let p50 = h.quantile(0.5).expect("single sample has a median");
        assert!(p50.is_finite() && p50 > 0.0);
        for q in [0.0, 0.25, 0.95, 0.99, 1.0, -1.0, 2.0] {
            assert_eq!(h.quantile(q), Some(p50), "q={q}");
        }
    }

    #[test]
    fn quantile_within_bucket_error() {
        let mut h = LogHistogram::new();
        for _ in 0..100 {
            h.record(1e-3);
        }
        let p50 = h.quantile(0.5).unwrap();
        // One bucket wide: relative error bounded by 2^(1/4).
        assert!(p50 > 1e-3 / 2f64.powf(0.25) && p50 < 1e-3 * 2f64.powf(0.25));
        // All mass in one bucket: every quantile agrees.
        assert_eq!(h.quantile(0.99), Some(p50));
    }

    #[test]
    fn tail_separates_from_body() {
        let mut h = LogHistogram::new();
        // 95 fast samples, 5 slow ones 100x larger.
        h.record_n(1e-4, 95);
        h.record_n(1e-2, 5);
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 / p50 > 50.0, "p99 {p99} should dwarf p50 {p50}");
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = LogHistogram::new();
        a.record_n(1e-5, 10);
        a.record_n(1e-2, 3);
        let mut b = LogHistogram::new();
        b.record_n(1e-3, 7);
        b.record_n(1e-5, 1);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 21);
    }

    #[test]
    fn degenerate_values_clamp() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-1.0);
        h.record(f64::NAN);
        h.record(1e300);
        assert_eq!(h.count(), 4);
        assert!(h.quantile(0.5).is_some());
    }

    #[test]
    fn since_recovers_exactly_the_window_samples() {
        // Build a cumulative histogram, snapshot it mid-stream, keep
        // recording: the diff must equal a histogram built from only the
        // post-snapshot samples — exactly, not approximately.
        let mut cumulative = LogHistogram::new();
        cumulative.record_n(1e-4, 40);
        cumulative.record_n(1e-2, 2);
        let snap = cumulative.clone();
        let window_samples: &[(f64, u64)] = &[(1e-4, 7), (1e-2, 3), (2.0, 1)];
        let mut expected = LogHistogram::new();
        for &(v, n) in window_samples {
            cumulative.record_n(v, n);
            expected.record_n(v, n);
        }
        assert_eq!(cumulative.since(&snap), expected);
        // An empty window diffs to an empty histogram.
        assert!(cumulative.since(&cumulative.clone()).is_empty());
        // Diffing against an empty baseline returns the whole run.
        assert_eq!(cumulative.since(&LogHistogram::new()), cumulative);
        // Windowed quantiles see only the window's tail, not the body
        // recorded before the snapshot.
        let w = cumulative.since(&snap);
        assert_eq!(w.count(), 11);
        assert!(
            w.quantile(0.99).unwrap() > 1.0,
            "window tail is the 2 s sample"
        );
    }

    #[test]
    fn bucket_round_trip() {
        let mut h = LogHistogram::new();
        h.record_n(1e-6, 4);
        h.record_n(1.0, 2);
        let back = LogHistogram::from_buckets(h.buckets()).unwrap();
        assert_eq!(h, back);
        assert!(LogHistogram::from_buckets(&[(NBUCKETS, 1)]).is_err());
        assert!(LogHistogram::from_buckets(&[(0, 0)]).is_err());
    }
}
