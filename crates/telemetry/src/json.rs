//! A minimal JSON value type with a writer and a recursive-descent parser.
//!
//! The telemetry exporters need machine-readable output (PerfReport files,
//! chrome-trace), and the round-trip tests need to read it back.  The
//! container this repo builds in has no network access, so instead of serde
//! this module implements the small JSON subset required: objects keep
//! insertion order (stable output), numbers are `f64` (written in shortest
//! round-trip form), and non-finite floats serialize as `null`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also the serialization of non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; JSON does not distinguish integer from float.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order (duplicate keys are not merged).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number in this value, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string in this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of this value, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields of this value, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(v) => render_num(*v, out),
            Value::Str(s) => render_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must consume the whole input).
    pub fn parse(s: &str) -> Result<Value, ParseError> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::at(pos, "trailing data after JSON value"));
        }
        Ok(v)
    }
}

fn render_num(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.0e15 && !(v == 0.0 && v.is_sign_negative()) {
        let _ = write!(out, "{}", v as i64);
    } else {
        // `{:?}` for f64 is the shortest representation that parses back to
        // the same bits — exactly what the round-trip schema needs.
        let _ = write!(out, "{v:?}");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn at(offset: usize, message: &str) -> Self {
        Self {
            offset,
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError::at(*pos, "unexpected token"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(ParseError::at(*pos, "unexpected end of input")),
        Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(ParseError::at(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(ParseError::at(*pos, "expected ':'"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(ParseError::at(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Value::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(ParseError::at(*pos, "expected '\"'"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(ParseError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, *pos + 1)
                            .ok_or_else(|| ParseError::at(*pos, "bad \\u escape"))?;
                        *pos += 4;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect a following \uXXXX.
                            if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u') {
                                let lo = parse_hex4(b, *pos + 3)
                                    .ok_or_else(|| ParseError::at(*pos, "bad low surrogate"))?;
                                *pos += 6;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err(ParseError::at(*pos, "lone high surrogate"));
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(cp)
                                .ok_or_else(|| ParseError::at(*pos, "invalid code point"))?,
                        );
                    }
                    _ => return Err(ParseError::at(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so valid).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).expect("input was a str"));
            }
        }
    }
}

fn parse_hex4(b: &[u8], pos: usize) -> Option<u32> {
    if pos + 4 > b.len() {
        return None;
    }
    let s = std::str::from_utf8(&b[pos..pos + 4]).ok()?;
    u32::from_str_radix(s, 16).ok()
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, ParseError> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    if start == *pos {
        return Err(ParseError::at(start, "expected a value"));
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| ParseError::at(start, "malformed number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (src, v) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("42", Value::Num(42.0)),
            ("-1.5e-3", Value::Num(-1.5e-3)),
            ("\"hi\"", Value::Str("hi".into())),
        ] {
            assert_eq!(Value::parse(src).unwrap(), v);
            assert_eq!(Value::parse(&v.render()).unwrap(), v);
        }
    }

    #[test]
    fn float_shortest_form_round_trips_exactly() {
        for v in [0.1, 1.0 / 3.0, 1e300, 5e-324, -0.0, 123456.789012345] {
            let rendered = Value::Num(v).render();
            let back = Value::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {rendered}");
        }
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Arr(vec![Value::Num(1.0), Value::Null])),
            (
                "quote\"\n".into(),
                Value::Obj(vec![("x".into(), Value::Bool(false))]),
            ),
        ]);
        assert_eq!(Value::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn object_get_and_accessors() {
        let v = Value::parse(r#"{"name":"t","n":3,"xs":[1,2]}"#).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("t"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("xs").unwrap().as_arr().unwrap().len(), 2);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Value::parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["{", "[1,", "\"abc", "{\"a\":}", "tru", "1 2"] {
            assert!(Value::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
