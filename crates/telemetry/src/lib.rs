//! `fun3d-telemetry`: unified span/counter instrumentation for the
//! PETSc-FUN3D reproduction.
//!
//! The paper's performance story (Table 3's phase breakdown, the
//! η_overall = η_alg · η_impl decomposition) needs one measurement schema
//! shared by *measured* wall-clock runs and *simulated* `SimClock` runs.
//! This crate provides it:
//!
//! * a hierarchical span profiler ([`Registry`], RAII [`SpanGuard`]s, nested
//!   path keys like `nks/step/gmres/precond`) accumulating wall time, call
//!   counts, and user counters (flops, bytes moved, GMRES iterations, ...);
//! * per-rank registries that snapshot ([`Snapshot`]) and [`merge`] across
//!   ranks, with simulated time ingested under the same schema
//!   ([`TimeDomain::Simulated`]);
//! * exporters: a human-readable table ([`render_table`]), chrome-trace JSON
//!   ([`chrome_trace`]) loadable in `chrome://tracing` / Perfetto, and a
//!   stable [`report::PerfReport`] JSON schema for regression tooling;
//! * live metrics ([`metrics`]): lock-light gauges/counters, fixed-capacity
//!   ring-buffer time series filled by a background collector, Prometheus
//!   text exposition, and a `fun3d-metrics/1` JSONL dump.
//!
//! [`Registry::disabled()`] is a `const fn` producing a no-op registry whose
//! span/counter calls compile to an `Option` check — hot kernels keep their
//! instrumentation callsites with near-zero cost when profiling is off.

pub mod blackbox;
pub mod events;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod report;

use hist::LogHistogram;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Whether a span's time came from a real clock or a machine-model clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TimeDomain {
    /// Wall-clock time measured with `std::time::Instant`.
    Measured,
    /// Virtual time accumulated by a `SimClock`-style machine model.
    Simulated,
}

impl TimeDomain {
    /// Stable string tag used in JSON exports.
    pub fn tag(self) -> &'static str {
        match self {
            TimeDomain::Measured => "measured",
            TimeDomain::Simulated => "simulated",
        }
    }

    /// Parse the stable string tag.
    pub fn from_tag(s: &str) -> Option<Self> {
        match s {
            "measured" => Some(TimeDomain::Measured),
            "simulated" => Some(TimeDomain::Simulated),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct Node {
    /// Full slash-separated path, e.g. `nks/krylov/gmres/precond`.
    path: String,
    children: Vec<usize>,
    domain: TimeDomain,
    calls: u64,
    total_s: f64,
    counters: BTreeMap<String, f64>,
    hist: LogHistogram,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    node: usize,
    t_start_s: f64,
    dur_s: f64,
}

#[derive(Debug)]
struct Inner {
    rank: usize,
    epoch: Instant,
    /// `nodes[0]` is a synthetic root with an empty path.
    nodes: Vec<Node>,
    /// Indices of currently-open spans, outermost first.
    stack: Vec<usize>,
    /// Open times of the spans in `stack` (same order), so dump-time
    /// flushes can attribute elapsed time without reaching into guards.
    open_starts: Vec<f64>,
    events: Vec<Event>,
    flows: Vec<FlowEdge>,
}

impl Inner {
    fn new(rank: usize) -> Self {
        Self {
            rank,
            epoch: Instant::now(),
            nodes: vec![Node {
                path: String::new(),
                children: Vec::new(),
                domain: TimeDomain::Measured,
                calls: 0,
                total_s: 0.0,
                counters: BTreeMap::new(),
                hist: LogHistogram::new(),
            }],
            stack: Vec::new(),
            open_starts: Vec::new(),
            events: Vec::new(),
            flows: Vec::new(),
        }
    }

    /// Find or create the child of `parent` named `name` (a single segment).
    fn child(&mut self, parent: usize, name: &str, domain: TimeDomain) -> usize {
        if let Some(&c) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| last_segment(&self.nodes[c].path) == name)
        {
            return c;
        }
        let path = if self.nodes[parent].path.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.nodes[parent].path, name)
        };
        let idx = self.nodes.len();
        self.nodes.push(Node {
            path,
            children: Vec::new(),
            domain,
            calls: 0,
            total_s: 0.0,
            counters: BTreeMap::new(),
            hist: LogHistogram::new(),
        });
        self.nodes[parent].children.push(idx);
        idx
    }

    /// Resolve a (possibly multi-segment) path relative to `base`.
    fn resolve(&mut self, base: usize, rel_path: &str, domain: TimeDomain) -> usize {
        let mut at = base;
        for seg in rel_path.split('/').filter(|s| !s.is_empty()) {
            at = self.child(at, seg, domain);
        }
        at
    }

    fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

fn last_segment(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// Increment a counter without allocating its name on the hot path.
///
/// `entry(name.to_string())` builds a `String` on every call even when the
/// key already exists — on kernels bumping a flop counter per inner
/// iteration that allocation dominates the registry's cost (~70 ns/call vs
/// ~20 ns with the lookup-first form in a tight-loop microbenchmark).  Look
/// up with `get_mut` first; allocate only on first insert.
fn bump_counter(counters: &mut BTreeMap<String, f64>, name: &str, delta: f64) {
    match counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            counters.insert(name.to_string(), delta);
        }
    }
}

/// A handle to a profiling registry.
///
/// Cloning is cheap (an `Arc` clone) and all clones share the same data, so
/// a guard can outlive the borrow it was created from.  A registry built
/// with [`Registry::disabled`] carries no allocation at all and every
/// operation on it is a single `Option` discriminant check.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl Registry {
    /// An enabled registry recording under the given rank id.
    pub fn enabled(rank: usize) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(Inner::new(rank)))),
        }
    }

    /// A no-op registry: spans and counters cost one branch.
    pub const fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(inner: &Arc<Mutex<Inner>>) -> MutexGuard<'_, Inner> {
        // Recover from poisoning: a panicked span drop must not cascade into
        // every later telemetry call.
        inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Open a span named `name` (may contain `/` for several levels) nested
    /// under the innermost open span.  Close it by dropping the guard.
    #[must_use = "the span closes when the guard drops; binding it to _ closes it immediately"]
    pub fn span(&self, name: &str) -> SpanGuard {
        match &self.inner {
            None => SpanGuard {
                state: None,
                // Even with profiling off, an armed flight recorder still
                // sees the span (under its bare name).
                bb: blackbox::span_open(name),
            },
            Some(arc) => {
                let (node, start, bb_path) = {
                    let mut g = Self::lock(arc);
                    let base = *g.stack.last().unwrap_or(&0);
                    let node = g.resolve(base, name, TimeDomain::Measured);
                    g.stack.push(node);
                    let start = g.now_s();
                    g.open_starts.push(start);
                    let bb_path = if blackbox::is_armed() {
                        Some(g.nodes[node].path.clone())
                    } else {
                        None
                    };
                    (node, start, bb_path)
                };
                SpanGuard {
                    state: Some(GuardState {
                        inner: Arc::clone(arc),
                        node,
                        start,
                    }),
                    bb: bb_path.and_then(blackbox::span_open_owned),
                }
            }
        }
    }

    /// Add `delta` to counter `name` on the innermost open span (or the
    /// root if no span is open).
    pub fn counter(&self, name: &str, delta: f64) {
        blackbox::counter(name, delta);
        if let Some(arc) = &self.inner {
            let mut g = Self::lock(arc);
            let at = *g.stack.last().unwrap_or(&0);
            bump_counter(&mut g.nodes[at].counters, name, delta);
        }
    }

    /// Add `delta` to counter `name` on the node at absolute path `path`,
    /// creating the path if needed (used when ingesting model output).
    pub fn counter_at(&self, path: &str, domain: TimeDomain, name: &str, delta: f64) {
        if blackbox::is_armed() {
            blackbox::counter(&format!("{path}:{name}"), delta);
        }
        if let Some(arc) = &self.inner {
            let mut g = Self::lock(arc);
            let at = g.resolve(0, path, domain);
            bump_counter(&mut g.nodes[at].counters, name, delta);
        }
    }

    /// Record the elapsed-so-far time of every currently-open span as a
    /// completed call, without closing the guards.  For dump-time snapshots
    /// when the process is about to die (panic hook, anomaly abort): a
    /// report built right after this parses with the interrupted phase
    /// visible.  If the guards do unwind later they record again — callers
    /// use this only on exit paths where they won't.
    pub fn flush_open(&self) {
        if let Some(arc) = &self.inner {
            let mut g = Self::lock(arc);
            let now = g.now_s();
            let open: Vec<(usize, f64)> = g
                .stack
                .iter()
                .copied()
                .zip(g.open_starts.iter().copied())
                .collect();
            for (node, start) in open {
                let dur = (now - start).max(0.0);
                let n = &mut g.nodes[node];
                n.calls += 1;
                n.total_s += dur;
                n.hist.record(dur);
                g.events.push(Event {
                    node,
                    t_start_s: start,
                    dur_s: dur,
                });
            }
        }
    }

    /// Record `calls` invocations totalling `dur_s` seconds on the node at
    /// absolute path `path` without opening a live span.  This is how
    /// simulated time (`SimClock`, `PhaseBreakdown`) enters the registry
    /// under the same schema as measured spans.
    pub fn record_span(&self, path: &str, domain: TimeDomain, dur_s: f64, calls: u64) {
        if let Some(arc) = &self.inner {
            let mut g = Self::lock(arc);
            let at = g.resolve(0, path, domain);
            g.nodes[at].calls += calls;
            g.nodes[at].total_s += dur_s;
            if calls > 0 {
                // Pre-aggregated input: only the mean per call is known.
                g.nodes[at].hist.record_n(dur_s / calls as f64, calls);
            }
        }
    }

    /// Like [`Registry::record_span`] but also emits a trace event placed at
    /// `t_start_s` on this rank's timeline (for simulated phases in
    /// chrome-trace output).
    pub fn record_event(&self, path: &str, domain: TimeDomain, t_start_s: f64, dur_s: f64) {
        if let Some(arc) = &self.inner {
            let mut g = Self::lock(arc);
            let at = g.resolve(0, path, domain);
            g.nodes[at].calls += 1;
            g.nodes[at].total_s += dur_s;
            g.nodes[at].hist.record(dur_s);
            g.events.push(Event {
                node: at,
                t_start_s,
                dur_s,
            });
        }
    }

    /// Record a cross-rank message edge (rendered as a chrome-trace flow
    /// arrow from the sender's lane to the receiver's).  Normally called on
    /// the *receiving* rank's registry, which knows both endpoints.
    pub fn record_flow(&self, edge: FlowEdge) {
        if let Some(arc) = &self.inner {
            Self::lock(arc).flows.push(edge);
        }
    }

    /// Immutable copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        match &self.inner {
            None => Snapshot::default(),
            Some(arc) => {
                let g = Self::lock(arc);
                let mut spans: Vec<SpanRow> = g
                    .nodes
                    .iter()
                    .skip(1)
                    .map(|n| SpanRow {
                        path: n.path.clone(),
                        domain: n.domain,
                        calls: n.calls,
                        total_s: n.total_s,
                        counters: n.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
                        hist: n.hist.clone(),
                    })
                    .collect();
                // Root-level counters (no open span) surface under "(root)".
                if !g.nodes[0].counters.is_empty() {
                    spans.push(SpanRow {
                        path: "(root)".to_string(),
                        domain: TimeDomain::Measured,
                        calls: g.nodes[0].calls,
                        total_s: g.nodes[0].total_s,
                        counters: g.nodes[0]
                            .counters
                            .iter()
                            .map(|(k, v)| (k.clone(), *v))
                            .collect(),
                        hist: g.nodes[0].hist.clone(),
                    });
                }
                spans.sort_by(|a, b| a.path.cmp(&b.path));
                let mut events: Vec<TraceEvent> = g
                    .events
                    .iter()
                    .map(|e| TraceEvent {
                        path: g.nodes[e.node].path.clone(),
                        domain: g.nodes[e.node].domain,
                        rank: g.rank,
                        t_start_s: e.t_start_s,
                        dur_s: e.dur_s,
                    })
                    .collect();
                events.sort_by(|a, b| a.t_start_s.total_cmp(&b.t_start_s));
                let mut flows = g.flows.clone();
                sort_flows(&mut flows);
                Snapshot {
                    rank: g.rank,
                    nranks: 1,
                    spans,
                    events,
                    flows,
                }
            }
        }
    }
}

#[derive(Debug)]
struct GuardState {
    inner: Arc<Mutex<Inner>>,
    node: usize,
    start: f64,
}

/// RAII guard for an open span; closes (and accumulates) on drop.
///
/// Guards must drop in strict LIFO order.  In debug builds an out-of-order
/// drop panics (nesting discipline); in release builds it is recorded
/// best-effort.
#[derive(Debug)]
#[must_use = "the span closes when the guard drops; binding it to _ closes it immediately"]
pub struct SpanGuard {
    state: Option<GuardState>,
    /// Flight-recorder handle, present only when the recorder was armed at
    /// open time (even on a disabled registry).
    bb: Option<blackbox::OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(bb) = self.bb.take() {
            blackbox::span_close(bb);
        }
        let Some(st) = self.state.take() else { return };
        let mismatch;
        {
            let mut g = Registry::lock(&st.inner);
            let top = g.stack.pop();
            g.open_starts.pop();
            mismatch = top != Some(st.node);
            let now = g.now_s();
            let dur = (now - st.start).max(0.0);
            let node = &mut g.nodes[st.node];
            node.calls += 1;
            node.total_s += dur;
            node.hist.record(dur);
            g.events.push(Event {
                node: st.node,
                t_start_s: st.start,
                dur_s: dur,
            });
        }
        // Panic outside the lock so the mutex is not poisoned, and never
        // during an unwind already in progress (double panic aborts).
        if mismatch && cfg!(debug_assertions) && !std::thread::panicking() {
            panic!("span guards dropped out of nesting order (unbalanced spans)");
        }
    }
}

/// One accumulated span in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRow {
    /// Full slash-separated path.
    pub path: String,
    /// Measured or simulated time.
    pub domain: TimeDomain,
    /// Number of completed calls.
    pub calls: u64,
    /// Total seconds across all calls.
    pub total_s: f64,
    /// User counters attributed to this span, sorted by name.
    pub counters: Vec<(String, f64)>,
    /// Per-call latency histogram (empty for spans that never completed).
    pub hist: LogHistogram,
}

impl SpanRow {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<f64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Median per-call latency, `None` when no samples were recorded.
    pub fn p50(&self) -> Option<f64> {
        self.hist.quantile(0.50)
    }

    /// 95th-percentile per-call latency.
    pub fn p95(&self) -> Option<f64> {
        self.hist.quantile(0.95)
    }

    /// 99th-percentile per-call latency.
    pub fn p99(&self) -> Option<f64> {
        self.hist.quantile(0.99)
    }
}

/// One interval on a rank's timeline (chrome-trace "complete" event).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Full slash-separated span path.
    pub path: String,
    /// Measured or simulated time.
    pub domain: TimeDomain,
    /// Rank (becomes the trace `tid`).
    pub rank: usize,
    /// Start, seconds since the registry epoch.
    pub t_start_s: f64,
    /// Duration in seconds.
    pub dur_s: f64,
}

/// A cross-rank message edge: sender lane/time to receiver lane/time.
/// Exported as a chrome-trace flow arrow (`ph:"s"` / `ph:"f"` pair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEdge {
    /// Sending rank (source lane `tid`).
    pub src_rank: usize,
    /// Simulated send time, seconds.
    pub src_ts_s: f64,
    /// Receiving rank (destination lane `tid`).
    pub dst_rank: usize,
    /// Simulated completion time of the receive, seconds.
    pub dst_ts_s: f64,
}

fn sort_flows(flows: &mut [FlowEdge]) {
    flows.sort_by(|a, b| {
        a.src_ts_s
            .total_cmp(&b.src_ts_s)
            .then(a.src_rank.cmp(&b.src_rank))
            .then(a.dst_rank.cmp(&b.dst_rank))
            .then(a.dst_ts_s.total_cmp(&b.dst_ts_s))
    });
}

/// An immutable copy of a registry's accumulated state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Rank this snapshot came from (0 for merged snapshots).
    pub rank: usize,
    /// How many rank snapshots were merged into this one.
    pub nranks: usize,
    /// Accumulated spans, sorted by path.
    pub spans: Vec<SpanRow>,
    /// Timeline events, sorted by (rank, start).
    pub events: Vec<TraceEvent>,
    /// Cross-rank message edges, sorted by (src time, src rank, dst rank).
    pub flows: Vec<FlowEdge>,
}

impl Snapshot {
    /// Look up a span row by its full path.
    pub fn span(&self, path: &str) -> Option<&SpanRow> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Total seconds over every span row whose last path segment is `name`
    /// (e.g. summing `scatter` wherever it nests).
    pub fn total_for_segment(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| last_segment(&s.path) == name)
            .map(|s| s.total_s)
            .sum()
    }

    /// Sum of a counter over all span rows.
    pub fn counter_total(&self, name: &str) -> f64 {
        self.spans.iter().filter_map(|s| s.counter(name)).sum()
    }
}

/// Merge per-rank snapshots into one: span times, call counts, and counters
/// sum across ranks; events keep their source rank.
///
/// The result is independent of input order: contributions are sorted by
/// source rank before any floating-point accumulation, so every permutation
/// of `snaps` sums in the same order and produces bitwise-identical totals.
pub fn merge(snaps: &[Snapshot]) -> Snapshot {
    let mut order: Vec<&Snapshot> = snaps.iter().collect();
    order.sort_by_key(|s| s.rank);

    let mut paths: Vec<(String, TimeDomain)> = Vec::new();
    for s in &order {
        for row in &s.spans {
            if !paths.iter().any(|(p, _)| *p == row.path) {
                paths.push((row.path.clone(), row.domain));
            }
        }
    }
    paths.sort_by(|a, b| a.0.cmp(&b.0));

    let mut spans = Vec::with_capacity(paths.len());
    for (path, domain) in paths {
        let mut calls = 0u64;
        let mut total_s = 0.0f64;
        let mut counters: Vec<(String, f64)> = Vec::new();
        let mut hist = LogHistogram::new();
        for s in &order {
            if let Some(row) = s.span(&path) {
                calls += row.calls;
                total_s += row.total_s;
                hist.merge(&row.hist);
                for (k, v) in &row.counters {
                    match counters.iter_mut().find(|(ck, _)| ck == k) {
                        Some((_, cv)) => *cv += *v,
                        None => counters.push((k.clone(), *v)),
                    }
                }
            }
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        spans.push(SpanRow {
            path,
            domain,
            calls,
            total_s,
            counters,
            hist,
        });
    }

    let mut events: Vec<TraceEvent> = order
        .iter()
        .flat_map(|s| s.events.iter().cloned())
        .collect();
    events.sort_by(|a, b| {
        a.rank
            .cmp(&b.rank)
            .then(a.t_start_s.total_cmp(&b.t_start_s))
    });
    let mut flows: Vec<FlowEdge> = order.iter().flat_map(|s| s.flows.iter().copied()).collect();
    sort_flows(&mut flows);
    Snapshot {
        rank: 0,
        nranks: order.iter().map(|s| s.nranks.max(1)).sum(),
        spans,
        events,
        flows,
    }
}

/// Serialize snapshots as chrome trace-event JSON (the
/// `{"traceEvents":[...]}` object form): one `ph:"X"` complete event per
/// span interval, `tid` = rank (one lane per rank), timestamps in
/// microseconds, sorted by (tid, ts).  Cross-rank [`FlowEdge`]s follow as
/// `ph:"s"` / `ph:"f"` flow-arrow pairs.  Load in `chrome://tracing` or
/// Perfetto.
pub fn chrome_trace(snaps: &[Snapshot]) -> String {
    use json::Value;
    let mut evs: Vec<&TraceEvent> = snaps.iter().flat_map(|s| s.events.iter()).collect();
    evs.sort_by(|a, b| {
        a.rank
            .cmp(&b.rank)
            .then(a.t_start_s.total_cmp(&b.t_start_s))
    });
    let mut items: Vec<Value> = evs
        .iter()
        .map(|e| {
            Value::Obj(vec![
                ("name".into(), Value::Str(last_segment(&e.path).to_string())),
                ("cat".into(), Value::Str(e.domain.tag().to_string())),
                ("ph".into(), Value::Str("X".into())),
                ("ts".into(), Value::Num(e.t_start_s * 1e6)),
                ("dur".into(), Value::Num(e.dur_s * 1e6)),
                ("pid".into(), Value::Num(0.0)),
                ("tid".into(), Value::Num(e.rank as f64)),
                (
                    "args".into(),
                    Value::Obj(vec![("path".into(), Value::Str(e.path.clone()))]),
                ),
            ])
        })
        .collect();
    let mut flows: Vec<FlowEdge> = snaps.iter().flat_map(|s| s.flows.iter().copied()).collect();
    sort_flows(&mut flows);
    for (id, f) in flows.iter().enumerate() {
        let endpoint = |ph: &str, rank: usize, ts: f64| {
            let mut fields = vec![
                ("name".into(), Value::Str("msg".into())),
                ("cat".into(), Value::Str("flow".into())),
                ("ph".into(), Value::Str(ph.into())),
                ("id".into(), Value::Num(id as f64)),
                ("ts".into(), Value::Num(ts * 1e6)),
                ("pid".into(), Value::Num(0.0)),
                ("tid".into(), Value::Num(rank as f64)),
            ];
            if ph == "f" {
                // Bind to the enclosing slice's end, the receive completion.
                fields.push(("bp".into(), Value::Str("e".into())));
            }
            Value::Obj(fields)
        };
        items.push(endpoint("s", f.src_rank, f.src_ts_s));
        items.push(endpoint("f", f.dst_rank, f.dst_ts_s));
    }
    Value::Obj(vec![
        ("traceEvents".into(), Value::Arr(items)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ])
    .render()
}

/// Render a snapshot as an indented human-readable profile table.
pub fn render_table(snap: &Snapshot) -> String {
    use std::fmt::Write as _;
    let total: f64 = snap
        .spans
        .iter()
        .filter(|s| !s.path.contains('/') && s.path != "(root)")
        .map(|s| s.total_s)
        .sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<44} {:>8} {:>12} {:>7}  counters",
        "span", "calls", "total", "%"
    );
    for row in &snap.spans {
        let depth = row.path.matches('/').count();
        let label = format!(
            "{}{}{}",
            "  ".repeat(depth),
            last_segment(&row.path),
            if row.domain == TimeDomain::Simulated {
                " [sim]"
            } else {
                ""
            }
        );
        let pct = if total > 0.0 {
            100.0 * row.total_s / total
        } else {
            0.0
        };
        let counters = row
            .counters
            .iter()
            .map(|(k, v)| format!("{k}={v:.3e}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "{label:<44} {:>8} {:>10.4}ms {pct:>6.1}%  {counters}",
            row.calls,
            row.total_s * 1e3,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        {
            let _g = reg.span("a/b");
            reg.counter("flops", 10.0);
        }
        let snap = reg.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn nested_spans_accumulate_under_paths() {
        let reg = Registry::enabled(3);
        for _ in 0..2 {
            let _outer = reg.span("nks");
            {
                let _inner = reg.span("krylov/gmres");
                reg.counter("its", 5.0);
            }
        }
        let snap = reg.snapshot();
        assert_eq!(snap.rank, 3);
        let outer = snap.span("nks").unwrap();
        assert_eq!(outer.calls, 2);
        let inner = snap.span("nks/krylov/gmres").unwrap();
        assert_eq!(inner.calls, 2);
        assert_eq!(inner.counter("its"), Some(10.0));
        assert!(snap.span("nks/krylov").is_some());
        // Events recorded for each completed guard (2 outer + 2 inner).
        assert_eq!(snap.events.len(), 4);
    }

    #[test]
    fn child_time_bounded_by_parent() {
        let reg = Registry::enabled(0);
        {
            let _outer = reg.span("outer");
            let _inner = reg.span("inner");
            std::hint::black_box((0..1000).sum::<u64>());
        }
        let snap = reg.snapshot();
        let outer = snap.span("outer").unwrap().total_s;
        let inner = snap.span("outer/inner").unwrap().total_s;
        assert!(inner <= outer + 1e-9, "inner {inner} > outer {outer}");
    }

    #[test]
    fn record_span_ingests_simulated_time() {
        let reg = Registry::enabled(0);
        reg.record_span("sim/scatter", TimeDomain::Simulated, 0.25, 12);
        reg.record_span("sim/scatter", TimeDomain::Simulated, 0.75, 3);
        reg.counter_at("sim", TimeDomain::Simulated, "bytes", 4096.0);
        let snap = reg.snapshot();
        let row = snap.span("sim/scatter").unwrap();
        assert_eq!(row.domain, TimeDomain::Simulated);
        assert_eq!(row.calls, 15);
        assert!((row.total_s - 1.0).abs() < 1e-12);
        assert_eq!(snap.span("sim").unwrap().counter("bytes"), Some(4096.0));
    }

    #[test]
    fn merge_sums_across_ranks() {
        let mk = |rank: usize, t: f64| {
            let reg = Registry::enabled(rank);
            reg.record_span("nks/flux", TimeDomain::Measured, t, 2);
            reg.counter_at("nks/flux", TimeDomain::Measured, "flops", 100.0 * t);
            reg.snapshot()
        };
        let merged = merge(&[mk(0, 1.0), mk(1, 2.0), mk(2, 4.0)]);
        assert_eq!(merged.nranks, 3);
        let row = merged.span("nks/flux").unwrap();
        assert_eq!(row.calls, 6);
        assert!((row.total_s - 7.0).abs() < 1e-12);
        assert_eq!(row.counter("flops"), Some(700.0));
    }

    #[test]
    fn segment_and_counter_totals() {
        let reg = Registry::enabled(0);
        reg.record_span("a/scatter", TimeDomain::Measured, 1.0, 1);
        reg.record_span("b/c/scatter", TimeDomain::Measured, 2.0, 1);
        reg.counter_at("a/scatter", TimeDomain::Measured, "bytes", 7.0);
        reg.counter_at("b/c/scatter", TimeDomain::Measured, "bytes", 9.0);
        let snap = reg.snapshot();
        assert!((snap.total_for_segment("scatter") - 3.0).abs() < 1e-12);
        assert!((snap.counter_total("bytes") - 16.0).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let reg = Registry::enabled(1);
        {
            let _a = reg.span("nks");
            let _b = reg.span("gmres");
        }
        let trace = chrome_trace(&[reg.snapshot()]);
        let v = json::Value::parse(&trace).expect("chrome trace must parse");
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 2);
        for e in evs {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").unwrap().as_f64().unwrap() >= 0.0);
            assert_eq!(e.get("tid").unwrap().as_f64(), Some(1.0));
        }
    }

    #[test]
    fn table_renders_every_span() {
        let reg = Registry::enabled(0);
        {
            let _a = reg.span("solve");
            let _b = reg.span("flux");
            reg.counter("flops", 123.0);
        }
        let txt = render_table(&reg.snapshot());
        assert!(txt.contains("solve"));
        assert!(txt.contains("flux"));
        assert!(txt.contains("flops"));
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "nesting discipline only enforced in debug builds"
    )]
    fn unbalanced_guard_drop_panics_in_debug() {
        let result = std::panic::catch_unwind(|| {
            let reg = Registry::enabled(0);
            let a = reg.span("a");
            let b = reg.span("b");
            drop(a); // out of order: b is still open
            drop(b);
        });
        assert!(
            result.is_err(),
            "out-of-order guard drop must panic in debug"
        );
    }

    #[test]
    fn span_histograms_expose_percentiles() {
        let reg = Registry::enabled(0);
        for _ in 0..20 {
            let _g = reg.span("kernel");
        }
        let snap = reg.snapshot();
        let row = snap.span("kernel").unwrap();
        assert_eq!(row.hist.count(), 20);
        let (p50, p95, p99) = (row.p50().unwrap(), row.p95().unwrap(), row.p99().unwrap());
        assert!(p50 <= p95 && p95 <= p99);
        // record_span feeds the histogram its per-call mean.
        let reg = Registry::enabled(0);
        reg.record_span("sim/phase", TimeDomain::Simulated, 1.0, 4);
        let row = reg.snapshot();
        let row = row.span("sim/phase").unwrap();
        assert_eq!(row.hist.count(), 4);
        let p50 = row.p50().unwrap();
        assert!(p50 > 0.25 / 1.2 && p50 < 0.25 * 1.2, "p50 {p50} near 0.25");
    }

    #[test]
    fn two_rank_merge_round_trip_preserves_structure() {
        // Emit spans + simulated events on two simulated ranks, merge, and
        // assert paths, counters, domains, and histograms all survive.
        let mk = |rank: usize| {
            let reg = Registry::enabled(rank);
            {
                let _outer = reg.span("nks");
                let _inner = reg.span("gmres");
                reg.counter("its", 3.0 * (rank + 1) as f64);
            }
            reg.record_event(
                "sim/scatter",
                TimeDomain::Simulated,
                0.1 * rank as f64,
                0.01,
            );
            reg.snapshot()
        };
        let (a, b) = (mk(0), mk(1));
        let merged = merge(&[b.clone(), a.clone()]); // order must not matter
        assert_eq!(merged, merge(&[a.clone(), b.clone()]));
        assert_eq!(merged.nranks, 2);
        for path in ["nks", "nks/gmres", "sim/scatter"] {
            assert!(merged.span(path).is_some(), "path {path} lost in merge");
        }
        let g = merged.span("nks/gmres").unwrap();
        assert_eq!(g.domain, TimeDomain::Measured);
        assert_eq!(g.counter("its"), Some(9.0));
        assert_eq!(g.calls, 2);
        assert_eq!(g.hist.count(), 2);
        let s = merged.span("sim/scatter").unwrap();
        assert_eq!(s.domain, TimeDomain::Simulated);
        assert_eq!(s.calls, 2);
        // Events keep their source rank and survive with both ranks present.
        assert_eq!(merged.events.len(), a.events.len() + b.events.len());
        assert!(merged.events.iter().any(|e| e.rank == 0));
        assert!(merged.events.iter().any(|e| e.rank == 1));
    }

    #[test]
    fn chrome_trace_covers_merged_ranks_and_domains() {
        let mk = |rank: usize| {
            let reg = Registry::enabled(rank);
            {
                let _a = reg.span("nks");
            }
            reg.record_event("sim/compute", TimeDomain::Simulated, 0.5, 0.25);
            reg.snapshot()
        };
        let merged = merge(&[mk(0), mk(1)]);
        let trace = chrome_trace(&[merged]);
        let v = json::Value::parse(&trace).expect("chrome trace must parse");
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 4);
        // tids cover both ranks; categories cover both time domains.
        let tids: Vec<f64> = evs
            .iter()
            .map(|e| e.get("tid").unwrap().as_f64().unwrap())
            .collect();
        assert!(tids.contains(&0.0) && tids.contains(&1.0));
        let cats: Vec<&str> = evs
            .iter()
            .map(|e| e.get("cat").unwrap().as_str().unwrap())
            .collect();
        assert!(cats.contains(&"measured") && cats.contains(&"simulated"));
        // Events are sorted by (tid, ts) and carry full paths in args.
        assert!(evs
            .iter()
            .any(|e| e.get("args").unwrap().get("path").unwrap().as_str() == Some("sim/compute")));
        let keys: Vec<(f64, f64)> = evs
            .iter()
            .map(|e| {
                (
                    e.get("tid").unwrap().as_f64().unwrap(),
                    e.get("ts").unwrap().as_f64().unwrap(),
                )
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(keys, sorted);
    }

    #[test]
    fn flows_survive_merge_and_render_as_arrow_pairs() {
        let mk = |rank: usize| {
            let reg = Registry::enabled(rank);
            reg.record_event("rank/compute", TimeDomain::Simulated, 0.0, 0.5);
            if rank == 1 {
                reg.record_flow(FlowEdge {
                    src_rank: 0,
                    src_ts_s: 0.2,
                    dst_rank: 1,
                    dst_ts_s: 0.3,
                });
            }
            reg.snapshot()
        };
        let (a, b) = (mk(0), mk(1));
        let merged = merge(&[b.clone(), a.clone()]);
        assert_eq!(merged.flows.len(), 1);
        assert_eq!(merged, merge(&[a.clone(), b.clone()]));
        let trace = chrome_trace(&[merged]);
        let v = json::Value::parse(&trace).expect("chrome trace must parse");
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        let phs: Vec<&str> = evs
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert!(phs.contains(&"s") && phs.contains(&"f"));
        let start = evs
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("s"))
            .unwrap();
        let finish = evs
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("f"))
            .unwrap();
        assert_eq!(start.get("tid").unwrap().as_f64(), Some(0.0));
        assert_eq!(finish.get("tid").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            start.get("id").unwrap().as_f64(),
            finish.get("id").unwrap().as_f64()
        );
        assert_eq!(finish.get("bp").unwrap().as_str(), Some("e"));
    }

    #[test]
    fn disabled_registry_records_no_flows() {
        let reg = Registry::disabled();
        reg.record_flow(FlowEdge {
            src_rank: 0,
            src_ts_s: 0.0,
            dst_rank: 1,
            dst_ts_s: 1.0,
        });
        assert!(reg.snapshot().flows.is_empty());
    }

    #[test]
    fn counter_lookup_first_semantics() {
        // The get_mut-first fast path must behave identically to entry():
        // repeated bumps accumulate, first bump inserts.
        let reg = Registry::enabled(0);
        reg.counter("flops", 1.0);
        for _ in 0..999 {
            reg.counter("flops", 1.0);
        }
        reg.counter_at("deep/path", TimeDomain::Measured, "bytes", 8.0);
        reg.counter_at("deep/path", TimeDomain::Measured, "bytes", 8.0);
        let snap = reg.snapshot();
        assert_eq!(snap.span("(root)").unwrap().counter("flops"), Some(1000.0));
        assert_eq!(snap.span("deep/path").unwrap().counter("bytes"), Some(16.0));
    }

    #[test]
    fn flush_open_records_open_spans_without_closing() {
        let reg = Registry::enabled(0);
        let _outer = reg.span("nks");
        let _inner = reg.span("krylov");
        reg.flush_open();
        let snap = reg.snapshot();
        // Both open spans appear as completed calls...
        assert_eq!(snap.span("nks").unwrap().calls, 1);
        assert_eq!(snap.span("nks/krylov").unwrap().calls, 1);
        // ...and the guards are still open: dropping them records again.
        drop(_inner);
        drop(_outer);
        let snap = reg.snapshot();
        assert_eq!(snap.span("nks").unwrap().calls, 2);
        assert_eq!(snap.span("nks/krylov").unwrap().calls, 2);
    }

    #[test]
    fn panicked_span_still_records_and_report_parses() {
        // An unwind through open spans must not lose them or leave the
        // registry in a state whose report fails to serialize/parse.
        let reg = Registry::enabled(0);
        let reg2 = reg.clone();
        let result = std::panic::catch_unwind(move || {
            let _outer = reg2.span("nks");
            let _inner = reg2.span("krylov/gmres");
            reg2.counter("its", 3.0);
            panic!("injected failure mid-span");
        });
        assert!(result.is_err());
        let snap = reg.snapshot();
        // Unwinding guards flushed both spans.
        assert_eq!(snap.span("nks").unwrap().calls, 1);
        let inner = snap.span("nks/krylov/gmres").unwrap();
        assert_eq!(inner.calls, 1);
        assert_eq!(inner.counter("its"), Some(3.0));
        // The partial report round-trips through the stable schema.
        let rep = report::PerfReport::new("panicked").with_snapshot(&snap);
        let back = report::PerfReport::from_json_str(&rep.to_json_string()).unwrap();
        assert_eq!(back, rep);
        // And the registry stays usable after the unwind.
        {
            let _g = reg.span("after");
        }
        assert_eq!(reg.snapshot().span("after").unwrap().calls, 1);
    }

    #[test]
    fn guard_survives_original_borrow() {
        // Guards hold their own Arc, so they can be returned from functions.
        fn open(reg: &Registry) -> SpanGuard {
            reg.span("escaped")
        }
        let reg = Registry::enabled(0);
        let g = open(&reg);
        drop(g);
        assert_eq!(reg.snapshot().span("escaped").unwrap().calls, 1);
    }
}
