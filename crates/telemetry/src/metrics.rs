//! `fun3d-metrics/1`: windowed time-series metrics for live serving.
//!
//! The span registry and event stream answer "where did the time go" after
//! a run; this module answers "what is the system doing *right now*, and
//! how has that changed over the last few seconds".  Three pieces:
//!
//! * lock-light [`Gauge`]s / [`Counter`]s — one relaxed atomic word each,
//!   cheap enough to update from a serving hot path;
//! * fixed-capacity ring-buffer [`TimeSeries`] grouped in a [`SeriesSet`],
//!   so a long-running engine holds a bounded sliding window of history no
//!   matter how long it serves;
//! * a background [`Collector`] thread that samples a caller-supplied
//!   closure on a fixed cadence into the set.
//!
//! Windowed latency quantiles ride on the existing log-bucket histograms:
//! sample the cumulative [`crate::hist::LogHistogram`] each tick and diff
//! snapshots with [`crate::hist::LogHistogram::since`] — the integer bucket
//! subtraction recovers the window's histogram exactly.
//!
//! Exports: Prometheus-style text exposition ([`SeriesSet::prometheus`],
//! latest value per series) and a `fun3d-metrics/1` JSONL dump
//! ([`SeriesSet::to_jsonl`] / [`SeriesSet::parse`]) that `fun3d-report
//! live` renders back as sparkline tables.

use crate::json::Value;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Schema identifier written as the JSONL header line.
pub const SCHEMA: &str = "fun3d-metrics/1";

/// A lock-free instantaneous value (f64 bits in one atomic word).
///
/// Reads and writes are `Relaxed`: a gauge is a monitoring estimate, not a
/// synchronization point, and the serving path must never pay a fence for
/// it.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge reading 0.
    pub const fn new() -> Self {
        Self {
            bits: AtomicU64::new(0),
        }
    }

    /// Set the current value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Read the current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A lock-free monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter {
    n: AtomicU64,
}

impl Counter {
    /// A counter at 0.
    pub const fn new() -> Self {
        Self {
            n: AtomicU64::new(0),
        }
    }

    /// Add `n` events.
    pub fn add(&self, n: u64) {
        self.n.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Read the cumulative count.
    pub fn get(&self) -> u64 {
        self.n.load(Ordering::Relaxed)
    }
}

/// One named series: a bounded ring of `(t_s, value)` points, oldest
/// evicted first.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    capacity: usize,
    points: VecDeque<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series holding at most `capacity` points.
    pub fn new(name: &str, capacity: usize) -> Self {
        Self {
            name: name.to_string(),
            capacity: capacity.max(1),
            points: VecDeque::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append one point, evicting the oldest when at capacity.
    pub fn push(&mut self, t_s: f64, value: f64) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
        }
        self.points.push_back((t_s, value));
    }

    /// Points currently held, oldest first.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points.iter().copied()
    }

    /// The values only, oldest first.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// The most recent point.
    pub fn latest(&self) -> Option<(f64, f64)> {
        self.points.back().copied()
    }

    /// Number of points currently held.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no point has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// An insertion-ordered collection of [`TimeSeries`] sharing one capacity —
/// the unit a collector fills and the serialization exports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesSet {
    capacity: usize,
    series: Vec<TimeSeries>,
}

impl SeriesSet {
    /// An empty set whose series each hold at most `capacity` points.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            series: Vec::new(),
        }
    }

    /// Record one point on the named series (created on first use).
    pub fn record(&mut self, name: &str, t_s: f64, value: f64) {
        match self.series.iter_mut().find(|s| s.name == name) {
            Some(s) => s.push(t_s, value),
            None => {
                let mut s = TimeSeries::new(name, self.capacity);
                s.push(t_s, value);
                self.series.push(s);
            }
        }
    }

    /// The named series, if any point was ever recorded on it.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Every series, in first-recorded order.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Whether no series holds any point.
    pub fn is_empty(&self) -> bool {
        self.series.iter().all(|s| s.is_empty())
    }

    /// Serialize as `fun3d-metrics/1` JSONL: a schema header line followed
    /// by one line per series carrying its `[[t_s, value], ...]` ring.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &Value::Obj(vec![
                ("schema".into(), Value::Str(SCHEMA.into())),
                ("capacity".into(), Value::Num(self.capacity as f64)),
            ])
            .render(),
        );
        out.push('\n');
        for s in &self.series {
            let points = s
                .points
                .iter()
                .map(|&(t, v)| Value::Arr(vec![Value::Num(t), Value::Num(v)]))
                .collect();
            out.push_str(
                &Value::Obj(vec![
                    ("series".into(), Value::Str(s.name.clone())),
                    ("points".into(), Value::Arr(points)),
                ])
                .render(),
            );
            out.push('\n');
        }
        out
    }

    /// Parse `fun3d-metrics/1` JSONL (inverse of [`SeriesSet::to_jsonl`]).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty metrics dump")?;
        let hv = Value::parse(header).map_err(|e| format!("bad header: {e}"))?;
        let schema = hv
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("header missing schema field")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?}, expected {SCHEMA:?}"
            ));
        }
        let capacity = hv
            .get("capacity")
            .and_then(Value::as_f64)
            .ok_or("header missing capacity field")? as usize;
        let mut out = SeriesSet::new(capacity);
        for (i, line) in lines.enumerate() {
            let err = |e: &str| format!("line {}: {e}", i + 2);
            let v = Value::parse(line).map_err(|e| err(&e.to_string()))?;
            let name = v
                .get("series")
                .and_then(Value::as_str)
                .ok_or_else(|| err("missing series name"))?;
            let points = v
                .get("points")
                .and_then(Value::as_arr)
                .ok_or_else(|| err("missing points array"))?;
            for p in points {
                let pair = p.as_arr().ok_or_else(|| err("point is not a pair"))?;
                let [t, val] = pair else {
                    return Err(err("point is not a [t, value] pair"));
                };
                let (t, val) = (
                    t.as_f64().ok_or_else(|| err("non-numeric timestamp"))?,
                    val.as_f64().ok_or_else(|| err("non-numeric value"))?,
                );
                out.record(name, t, val);
            }
        }
        Ok(out)
    }

    /// Write the dump to `path` as JSONL.
    pub fn write_jsonl(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Read a dump from a JSONL file.
    pub fn read_jsonl(path: &str) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Prometheus-style text exposition of the latest value of every
    /// series: a `# TYPE` line and a sample line per series, names
    /// sanitized to `[a-zA-Z0-9_]` with the given prefix.
    pub fn prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        for s in &self.series {
            let Some((_, v)) = s.latest() else { continue };
            let name = format!("{prefix}_{}", sanitize_metric_name(&s.name));
            out.push_str(&format!(
                "# TYPE {name} gauge\n{name} {}\n",
                Value::Num(v).render()
            ));
        }
        out
    }
}

/// Map an arbitrary series name onto the Prometheus metric-name alphabet.
fn sanitize_metric_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

struct CollectorShared {
    stop: AtomicBool,
    parked: Mutex<()>,
    wake: Condvar,
    set: Mutex<SeriesSet>,
}

/// A background sampler: every `interval` it calls the source closure and
/// records each returned `(name, value)` pair into a shared [`SeriesSet`],
/// stamped with seconds since collector start.
///
/// The sampled engine pays nothing for the collector's existence beyond
/// what the source closure itself reads; stopping joins the thread and
/// hands the collected set back.
pub struct Collector {
    shared: Arc<CollectorShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Collector {
    /// Start sampling `source` every `interval` into ring buffers of
    /// `capacity` points per series.
    pub fn start(
        interval: Duration,
        capacity: usize,
        mut source: Box<dyn FnMut() -> Vec<(String, f64)> + Send>,
    ) -> Self {
        let shared = Arc::new(CollectorShared {
            stop: AtomicBool::new(false),
            parked: Mutex::new(()),
            wake: Condvar::new(),
            set: Mutex::new(SeriesSet::new(capacity)),
        });
        let thread = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("fun3d-metrics".into())
                .spawn(move || {
                    let epoch = Instant::now();
                    loop {
                        let t_s = epoch.elapsed().as_secs_f64();
                        let sample = source();
                        {
                            let mut set = shared.set.lock().unwrap_or_else(|e| e.into_inner());
                            for (name, v) in sample {
                                set.record(&name, t_s, v);
                            }
                        }
                        if shared.stop.load(Ordering::Acquire) {
                            return;
                        }
                        let g = shared.parked.lock().unwrap_or_else(|e| e.into_inner());
                        let (_g, _timeout) = shared
                            .wake
                            .wait_timeout(g, interval)
                            .unwrap_or_else(|e| e.into_inner());
                        // A stop signal received while parked falls through
                        // to one last sample before the top-of-loop check
                        // returns: the window between the final tick and
                        // shutdown (e.g. a serving queue draining its
                        // slowest requests) must not go unobserved.
                    }
                })
                .expect("spawn metrics collector")
        };
        Self {
            shared,
            thread: Some(thread),
        }
    }

    /// A copy of everything collected so far.
    pub fn snapshot(&self) -> SeriesSet {
        self.shared
            .set
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Stop sampling (after one final sample), join the thread, and return
    /// the collected set.
    pub fn stop(mut self) -> SeriesSet {
        self.finish();
        self.snapshot()
    }

    fn finish(&mut self) {
        if let Some(t) = self.thread.take() {
            self.shared.stop.store(true, Ordering::Release);
            drop(self.shared.parked.lock().unwrap_or_else(|e| e.into_inner()));
            self.shared.wake.notify_all();
            let _ = t.join();
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn gauge_and_counter_round_trip() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(3.25);
        assert_eq!(g.get(), 3.25);
        g.set(-0.0);
        assert_eq!(g.get().to_bits(), (-0.0f64).to_bits(), "bit-exact store");
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut s = TimeSeries::new("q", 3);
        for i in 0..5 {
            s.push(i as f64, (10 * i) as f64);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.values(), vec![20.0, 30.0, 40.0]);
        assert_eq!(s.latest(), Some((4.0, 40.0)));
    }

    #[test]
    fn series_set_records_and_orders() {
        let mut set = SeriesSet::new(8);
        set.record("depth", 0.0, 1.0);
        set.record("p99_s", 0.0, 0.5);
        set.record("depth", 1.0, 2.0);
        assert_eq!(set.series().len(), 2);
        assert_eq!(set.series()[0].name(), "depth", "insertion order kept");
        assert_eq!(set.get("depth").unwrap().len(), 2);
        assert!(set.get("nonesuch").is_none());
        assert!(!set.is_empty());
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let mut set = SeriesSet::new(4);
        set.record("queue_depth", 0.001, 3.0);
        set.record("queue_depth", 0.102, 5.0);
        set.record("p99_s", 0.102, 0.0125);
        set.record("rate0:solves_per_s", 0.25, 112.5);
        let text = set.to_jsonl();
        assert!(text.starts_with("{\"schema\":\"fun3d-metrics/1\""));
        let back = SeriesSet::parse(&text).unwrap();
        assert_eq!(set, back);
        // The serialized text is a fixed point.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn parse_rejects_malformed_dumps() {
        assert!(SeriesSet::parse("").is_err());
        assert!(SeriesSet::parse("{\"schema\":\"fun3d-metrics/999\",\"capacity\":4}\n").is_err());
        let hdr = "{\"schema\":\"fun3d-metrics/1\",\"capacity\":4}\n";
        assert!(SeriesSet::parse(&format!("{hdr}{{\"series\":\"x\"}}\n")).is_err());
        assert!(
            SeriesSet::parse(&format!("{hdr}{{\"series\":\"x\",\"points\":[[1]]}}\n")).is_err()
        );
        // Header alone is a valid empty dump.
        assert!(SeriesSet::parse(hdr).unwrap().is_empty());
    }

    #[test]
    fn prometheus_exposes_latest_values_with_sanitized_names() {
        let mut set = SeriesSet::new(4);
        set.record("queue_depth", 0.0, 3.0);
        set.record("queue_depth", 1.0, 7.0);
        set.record("rate0:p99_s", 1.0, 0.5);
        let text = set.prometheus("fun3d_serve");
        assert!(text.contains("# TYPE fun3d_serve_queue_depth gauge\n"));
        assert!(text.contains("fun3d_serve_queue_depth 7\n"), "{text}");
        assert!(text.contains("fun3d_serve_rate0_p99_s 0.5\n"), "{text}");
        // Every sample line is `name value` over the exposition alphabet.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.split_once(' ').expect("name value");
            assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
        assert_eq!(sanitize_metric_name("0weird name"), "_0weird_name");
    }

    #[test]
    fn collector_samples_until_stopped() {
        let ticks = Arc::new(AtomicUsize::new(0));
        let t2 = ticks.clone();
        let col = Collector::start(
            Duration::from_millis(1),
            64,
            Box::new(move || {
                let n = t2.fetch_add(1, Ordering::Relaxed);
                vec![("tick".into(), n as f64)]
            }),
        );
        while ticks.load(Ordering::Relaxed) < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let live = col.snapshot();
        assert!(!live.is_empty(), "snapshot sees samples mid-flight");
        let set = col.stop();
        let s = set.get("tick").expect("series exists");
        assert!(s.len() >= 3);
        // Timestamps are monotone and values are the tick sequence.
        let pts: Vec<(f64, f64)> = s.points().collect();
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(pts.windows(2).all(|w| w[1].1 == w[0].1 + 1.0));
    }
}
