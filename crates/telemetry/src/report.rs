//! The stable `fun3d-perf/1` JSON report schema.
//!
//! Every bench regenerator can emit one of these via `--json <path>`; the
//! efficiency tooling reads them back to derive η_alg / η_impl columns.
//! The schema is versioned (`"schema": "fun3d-perf/1"`) and round-trips
//! exactly: floats are written in shortest round-trip form, and
//! [`PerfReport::from_json_str`] of [`PerfReport::to_json_string`] is
//! identity (checked by tests).

use crate::hist::LogHistogram;
use crate::json::Value;
use crate::{Snapshot, SpanRow, TimeDomain};

/// Schema identifier written into every report.
pub const SCHEMA: &str = "fun3d-perf/1";

/// A machine-readable performance report for one run of a regenerator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfReport {
    /// Report name, usually the regenerator binary (`table3`, `spmv`, ...).
    pub name: String,
    /// Free-form string metadata (machine, scale, git describe, ...).
    pub meta: Vec<(String, String)>,
    /// Named scalar results (times, rates, iteration counts, η values).
    pub metrics: Vec<(String, f64)>,
    /// Merged span profile for the run (may be empty).
    pub spans: Vec<SpanRow>,
}

impl PerfReport {
    /// An empty report with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Attach the merged span profile of `snap`.
    pub fn with_snapshot(mut self, snap: &Snapshot) -> Self {
        self.spans = snap.spans.clone();
        self
    }

    /// Append a string metadata entry (builder style).
    pub fn with_meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.meta.push((key.into(), value.into()));
        self
    }

    /// Append a scalar metric.
    pub fn push_metric(&mut self, key: impl Into<String>, value: f64) {
        self.metrics.push((key.into(), value));
    }

    /// Look up a metric by name (first match).
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// Look up a string metadata entry by key (first match).
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Look up a span row by full path.
    pub fn span(&self, path: &str) -> Option<&SpanRow> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Derived tail-latency metrics: one `"{path}:p95_s"` entry per span
    /// with a non-empty latency histogram.  The harness appends these to
    /// each rep's metric list so baselines gate on p95, not just medians.
    pub fn tail_metrics(&self) -> Vec<(String, f64)> {
        self.spans
            .iter()
            .filter_map(|s| s.p95().map(|p| (format!("{}:p95_s", s.path), p)))
            .collect()
    }

    /// Derived load-imbalance metrics: one `"{label}:imbalance"` entry per
    /// parallel-region span (ingested under `par/{label}` with an
    /// `imbalance` counter).  Lower is better; 1.0 is a perfectly balanced
    /// team, matching the imbalance factor of the paper's Table 3.
    pub fn region_metrics(&self) -> Vec<(String, f64)> {
        self.spans
            .iter()
            .filter_map(|s| {
                let label = s.path.strip_prefix("par/")?;
                let imb = s.counter("imbalance")?;
                Some((format!("{label}:imbalance"), imb))
            })
            .collect()
    }

    /// Derived achieved-bandwidth metrics: one `"{path}:gbps"` entry per
    /// span carrying a `bytes` traffic counter and nonzero time — the
    /// analytic Eq. 1-style byte count divided by the measured span time,
    /// i.e. a live version of the paper's Table 2 columns.
    pub fn bandwidth_metrics(&self) -> Vec<(String, f64)> {
        self.spans
            .iter()
            .filter_map(|s| {
                let bytes = s.counter("bytes")?;
                if s.total_s <= 0.0 {
                    return None;
                }
                Some((format!("{}:gbps", s.path), bytes / s.total_s / 1e9))
            })
            .collect()
    }

    /// Build the JSON tree for this report.
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("schema".into(), Value::Str(SCHEMA.into())),
            ("name".into(), Value::Str(self.name.clone())),
            (
                "meta".into(),
                Value::Obj(
                    self.meta
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "metrics".into(),
                Value::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "spans".into(),
                Value::Arr(self.spans.iter().map(span_to_json).collect()),
            ),
        ])
    }

    /// Serialize to a JSON string (compact, single line).
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Parse a report back from JSON text.
    pub fn from_json_str(s: &str) -> Result<Self, String> {
        let v = Value::parse(s).map_err(|e| e.to_string())?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema field")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?}, expected {SCHEMA:?}"
            ));
        }
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("missing name field")?
            .to_string();
        let meta = v
            .get("meta")
            .and_then(Value::as_obj)
            .unwrap_or(&[])
            .iter()
            .map(|(k, val)| {
                val.as_str()
                    .map(|s| (k.clone(), s.to_string()))
                    .ok_or_else(|| format!("meta entry {k:?} is not a string"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let metrics = v
            .get("metrics")
            .and_then(Value::as_obj)
            .unwrap_or(&[])
            .iter()
            .map(|(k, val)| {
                val.as_f64()
                    .map(|x| (k.clone(), x))
                    .ok_or_else(|| format!("metric {k:?} is not a number"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let spans = v
            .get("spans")
            .and_then(Value::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(span_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            name,
            meta,
            metrics,
            spans,
        })
    }

    /// Write the report to `path` as JSON.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string() + "\n")
    }

    /// Read a report from a JSON file.
    pub fn read_json(path: &str) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

fn span_to_json(row: &SpanRow) -> Value {
    let mut fields = vec![
        ("path".into(), Value::Str(row.path.clone())),
        ("domain".into(), Value::Str(row.domain.tag().into())),
        ("calls".into(), Value::Num(row.calls as f64)),
        ("total_s".into(), Value::Num(row.total_s)),
        (
            "counters".into(),
            Value::Obj(
                row.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Num(*v)))
                    .collect(),
            ),
        ),
    ];
    // Omitted when empty so pre-histogram reports stay parseable and the
    // JSON fixed-point property holds for spans without samples.
    if !row.hist.is_empty() {
        fields.push((
            "hist".into(),
            Value::Arr(
                row.hist
                    .buckets()
                    .iter()
                    .map(|&(b, c)| Value::Arr(vec![Value::Num(b as f64), Value::Num(c as f64)]))
                    .collect(),
            ),
        ));
    }
    Value::Obj(fields)
}

fn span_from_json(v: &Value) -> Result<SpanRow, String> {
    let path = v
        .get("path")
        .and_then(Value::as_str)
        .ok_or("span missing path")?
        .to_string();
    let domain = v
        .get("domain")
        .and_then(Value::as_str)
        .and_then(TimeDomain::from_tag)
        .ok_or("span missing/invalid domain")?;
    let calls = v
        .get("calls")
        .and_then(Value::as_f64)
        .ok_or("span missing calls")? as u64;
    let total_s = v
        .get("total_s")
        .and_then(Value::as_f64)
        .ok_or("span missing total_s")?;
    let counters = v
        .get("counters")
        .and_then(Value::as_obj)
        .unwrap_or(&[])
        .iter()
        .map(|(k, val)| {
            val.as_f64()
                .map(|x| (k.clone(), x))
                .ok_or_else(|| format!("counter {k:?} is not a number"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let hist = match v.get("hist").and_then(Value::as_arr) {
        // Absent (or empty) means no samples were recorded.
        None => LogHistogram::new(),
        Some(pairs) => {
            let pairs = pairs
                .iter()
                .map(|p| {
                    let p = p.as_arr().filter(|p| p.len() == 2).ok_or("bad hist pair")?;
                    let b = p[0].as_f64().ok_or("bad hist bucket")? as u32;
                    let c = p[1].as_f64().ok_or("bad hist count")? as u64;
                    Ok::<(u32, u64), String>((b, c))
                })
                .collect::<Result<Vec<_>, _>>()?;
            LogHistogram::from_buckets(&pairs)?
        }
    };
    Ok(SpanRow {
        path,
        domain,
        calls,
        total_s,
        counters,
        hist,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_report() -> PerfReport {
        let reg = Registry::enabled(0);
        {
            let _s = reg.span("nks");
            let _k = reg.span("krylov");
            reg.counter("its", 17.0);
        }
        reg.record_span("sim/scatter", TimeDomain::Simulated, 0.125, 4);
        let mut r = PerfReport::new("unit-test")
            .with_meta("machine", "asci_red")
            .with_meta("scale", "0.1")
            .with_snapshot(&reg.snapshot());
        r.push_metric("time_s", 1.0 / 3.0);
        r.push_metric("eta_overall", 0.8125);
        r
    }

    #[test]
    fn round_trips_exactly() {
        let r = sample_report();
        let text = r.to_json_string();
        let back = PerfReport::from_json_str(&text).unwrap();
        assert_eq!(r, back);
        // And the JSON text itself is a fixed point.
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn accessors_find_entries() {
        let r = sample_report();
        assert_eq!(r.metric("eta_overall"), Some(0.8125));
        assert!(r.metric("absent").is_none());
        assert_eq!(r.span("nks/krylov").unwrap().counter("its"), Some(17.0));
        assert_eq!(r.span("sim/scatter").unwrap().domain, TimeDomain::Simulated);
    }

    #[test]
    fn schema_is_enforced() {
        let bad = r#"{"schema":"fun3d-perf/999","name":"x","meta":{},"metrics":{},"spans":[]}"#;
        assert!(PerfReport::from_json_str(bad).is_err());
        assert!(PerfReport::from_json_str("{}").is_err());
        assert!(PerfReport::from_json_str("not json").is_err());
    }

    #[test]
    fn hist_survives_round_trip_and_feeds_tail_metrics() {
        let r = sample_report();
        // Live spans recorded real durations, so their histograms are
        // non-empty and p95 tail metrics exist for them.
        let nks = r.span("nks").unwrap();
        assert!(!nks.hist.is_empty());
        let tails = r.tail_metrics();
        assert!(tails.iter().any(|(k, _)| k == "nks:p95_s"));
        assert!(tails.iter().any(|(k, _)| k == "sim/scatter:p95_s"));
        assert!(tails.iter().all(|(_, v)| *v > 0.0));
        let back = PerfReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back.span("nks").unwrap().hist, nks.hist);
        assert_eq!(back.tail_metrics(), tails);
        // Pre-histogram reports (no "hist" key) still parse, with empty hists.
        let legacy = r#"{"schema":"fun3d-perf/1","name":"x","meta":{},"metrics":{},"spans":[{"path":"a","domain":"measured","calls":1,"total_s":0.5,"counters":{}}]}"#;
        let old = PerfReport::from_json_str(legacy).unwrap();
        assert!(old.span("a").unwrap().hist.is_empty());
        assert!(old.tail_metrics().is_empty());
    }

    #[test]
    fn region_and_bandwidth_metrics_derive_from_spans() {
        let reg = Registry::enabled(0);
        // A parallel region ingested the way the bench drains the profiler:
        // wall time on the span, derived stats as counters.
        reg.record_span("par/spmv_csr", TimeDomain::Measured, 0.5, 7);
        reg.counter_at("par/spmv_csr", TimeDomain::Measured, "imbalance", 1.25);
        reg.counter_at("par/spmv_csr", TimeDomain::Measured, "busy_max_s", 0.45);
        // A timed kernel span with an analytic byte-traffic counter.
        reg.record_span("spmv", TimeDomain::Measured, 2.0, 10);
        reg.counter_at("spmv", TimeDomain::Measured, "bytes", 30e9);
        // A span with bytes but zero time must not divide by zero.
        reg.counter_at("empty", TimeDomain::Measured, "bytes", 1e9);
        let r = PerfReport::new("t").with_snapshot(&reg.snapshot());

        let regions = r.region_metrics();
        assert_eq!(regions, vec![("spmv_csr:imbalance".to_string(), 1.25)]);

        let bw = r.bandwidth_metrics();
        assert_eq!(bw.len(), 1, "zero-time span must be skipped: {bw:?}");
        assert_eq!(bw[0].0, "spmv:gbps");
        assert!((bw[0].1 - 15.0).abs() < 1e-12);

        // Both survive a JSON round trip (they are pure span derivations).
        let back = PerfReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back.region_metrics(), regions);
        assert_eq!(back.bandwidth_metrics(), bw);

        // Reports without profile spans (pre-profile fixtures) yield none.
        let plain = sample_report();
        assert!(plain.region_metrics().is_empty());
        assert!(plain.bandwidth_metrics().is_empty());
    }

    #[test]
    fn file_round_trip() {
        let r = sample_report();
        let dir = std::env::temp_dir();
        let path = dir.join("fun3d_perf_report_test.json");
        let path = path.to_str().unwrap();
        r.write_json(path).unwrap();
        let back = PerfReport::read_json(path).unwrap();
        std::fs::remove_file(path).ok();
        assert_eq!(r, back);
    }
}
