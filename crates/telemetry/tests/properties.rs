//! Property tests for the telemetry registry: merge order-independence
//! across simulated ranks, chrome-trace structural validity with monotone
//! timestamps per thread, and PerfReport round-tripping of arbitrary data.

use fun3d_telemetry::report::PerfReport;
use fun3d_telemetry::{chrome_trace, json, merge, Registry, Snapshot, TimeDomain};
use proptest::prelude::*;

const PHASES: &[&str] = &[
    "nks/flux",
    "nks/jacobian",
    "nks/gmres",
    "comm/scatter",
    "comm/allreduce",
];

/// Build a simulated-rank snapshot from (phase index, dur, counter) triples.
fn rank_snapshot(rank: usize, items: &[(usize, f64, f64)]) -> Snapshot {
    let reg = Registry::enabled(rank);
    let mut t = 0.0;
    for &(phase, dur, counter) in items {
        let path = PHASES[phase % PHASES.len()];
        reg.record_event(path, TimeDomain::Simulated, t, dur);
        reg.counter_at(path, TimeDomain::Simulated, "work", counter);
        t += dur;
    }
    reg.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merge_is_order_independent(
        ranks in proptest::collection::vec(
            proptest::collection::vec((0usize..5, 1e-6f64..1.0, 0.0f64..1e6), 1..12),
            2..6,
        ),
        rot in 0usize..6,
    ) {
        let snaps: Vec<Snapshot> = ranks
            .iter()
            .enumerate()
            .map(|(r, items)| rank_snapshot(r, items))
            .collect();
        let forward = merge(&snaps);

        // Any permutation (rotation + reversal covers enough of S_n to catch
        // order-dependent float accumulation) must give bitwise-equal totals.
        let mut rotated = snaps.clone();
        let len = rotated.len();
        rotated.rotate_left(rot % len);
        let mut reversed = snaps.clone();
        reversed.reverse();

        for permuted in [merge(&rotated), merge(&reversed)] {
            prop_assert_eq!(&forward.spans, &permuted.spans);
            prop_assert_eq!(&forward.events, &permuted.events);
            prop_assert_eq!(forward.nranks, permuted.nranks);
        }
    }

    #[test]
    fn chrome_trace_valid_and_monotone_per_tid(
        ranks in proptest::collection::vec(
            proptest::collection::vec((0usize..5, 1e-6f64..0.5, 0.0f64..10.0), 1..10),
            1..5,
        ),
    ) {
        let snaps: Vec<Snapshot> = ranks
            .iter()
            .enumerate()
            .map(|(r, items)| rank_snapshot(r, items))
            .collect();
        let text = chrome_trace(&snaps);
        let v = json::Value::parse(&text).expect("chrome trace must be valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let total: usize = ranks.iter().map(Vec::len).sum();
        prop_assert_eq!(events.len(), total);

        let mut last_ts: Vec<Option<f64>> = vec![None; ranks.len()];
        for e in events {
            prop_assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            let dur = e.get("dur").unwrap().as_f64().unwrap();
            prop_assert!(ts >= 0.0 && dur >= 0.0);
            let tid = e.get("tid").unwrap().as_f64().unwrap() as usize;
            prop_assert!(tid < ranks.len());
            if let Some(prev) = last_ts[tid] {
                prop_assert!(ts >= prev, "ts must be monotone within tid {}: {} < {}", tid, ts, prev);
            }
            last_ts[tid] = Some(ts);
            prop_assert!(e.get("args").unwrap().get("path").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn perf_report_round_trips_arbitrary_metrics(
        metrics in proptest::collection::vec((0usize..1000, -1e12f64..1e12), 0..20),
        durs in proptest::collection::vec(1e-9f64..1e3, 1..8),
    ) {
        let reg = Registry::enabled(0);
        for (i, &d) in durs.iter().enumerate() {
            reg.record_span(PHASES[i % PHASES.len()], TimeDomain::Measured, d, 1 + i as u64);
        }
        let mut r = PerfReport::new("prop-test")
            .with_meta("k", "v \"quoted\" \n line")
            .with_snapshot(&reg.snapshot());
        for (i, &(id, v)) in metrics.iter().enumerate() {
            r.push_metric(format!("m{id}_{i}"), v);
        }
        let text = r.to_json_string();
        let back = PerfReport::from_json_str(&text).expect("round-trip parse");
        prop_assert_eq!(&r, &back);
        prop_assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn merged_totals_equal_sum_of_parts(
        ranks in proptest::collection::vec(
            proptest::collection::vec((0usize..5, 1e-6f64..1.0, 0.0f64..1e3), 1..10),
            1..5,
        ),
    ) {
        let snaps: Vec<Snapshot> = ranks
            .iter()
            .enumerate()
            .map(|(r, items)| rank_snapshot(r, items))
            .collect();
        let merged = merge(&snaps);
        for phase in PHASES {
            let calls: u64 = snaps.iter().filter_map(|s| s.span(phase)).map(|r| r.calls).sum();
            let merged_calls = merged.span(phase).map_or(0, |r| r.calls);
            prop_assert_eq!(calls, merged_calls);
        }
        let events: usize = snaps.iter().map(|s| s.events.len()).sum();
        prop_assert_eq!(events, merged.events.len());
    }
}
