//! Memory-centric analysis demo: run the application's kernels through the
//! cache/TLB simulator, compare with the analytic miss bounds (Eqs. 1-2),
//! and price the result with the bandwidth-based SpMV performance model.
//!
//! ```sh
//! cargo run --release --example cache_model
//! ```

use petsc_fun3d_repro::core::config::apply_orderings;
use petsc_fun3d_repro::euler::model::FlowModel;
use petsc_fun3d_repro::memmodel::bounds::predicted_improvement;
use petsc_fun3d_repro::memmodel::hierarchy::MemoryHierarchy;
use petsc_fun3d_repro::memmodel::machine::MachineSpec;
use petsc_fun3d_repro::memmodel::spmv_model::{bcsr_traffic, csr_traffic, predicted_mflops};
use petsc_fun3d_repro::memmodel::stream::run_stream;
use petsc_fun3d_repro::memmodel::trace::{csr_spmv_trace, flux_edge_trace_order};
use petsc_fun3d_repro::mesh::generator::BumpChannelSpec;
use petsc_fun3d_repro::mesh::reorder::{EdgeOrdering, VertexOrdering};
use petsc_fun3d_repro::sparse::layout::FieldLayout;

fn main() {
    let base = BumpChannelSpec::with_target_vertices(10_000).build();
    println!(
        "kernels on a {}-vertex mesh, R10000/Origin-2000 cache hierarchy\n",
        base.nverts()
    );

    // --- 1. The flux kernel's misses under good and bad orderings ---
    println!("flux kernel (second order, 4 components):");
    for (name, vord, eord, layout) in [
        (
            "original (colored edges, unordered vertices, segregated)",
            VertexOrdering::Random(1),
            EdgeOrdering::VectorColored,
            FieldLayout::Segregated,
        ),
        (
            "tuned (sorted edges, RCM vertices, interlaced)",
            VertexOrdering::ReverseCuthillMcKee,
            EdgeOrdering::VertexSorted,
            FieldLayout::Interlaced,
        ),
    ] {
        let mesh = apply_orderings(base.clone(), vord, eord);
        let mut mem = MemoryHierarchy::origin2000();
        let s = flux_edge_trace_order(mesh.edges(), mesh.nverts(), 4, layout, true, &mut mem);
        println!(
            "  {name}\n      TLB misses {:>9}   L2 misses {:>9}   L1 misses {:>9}",
            s.tlb_misses, s.l2_misses, s.l1_misses
        );
    }

    // --- 2. SpMV misses and the analytic bound ---
    let mesh = apply_orderings(
        base.clone(),
        VertexOrdering::ReverseCuthillMcKee,
        EdgeOrdering::VertexSorted,
    );
    let disc = petsc_fun3d_repro::euler::residual::Discretization::new(
        &mesh,
        FlowModel::incompressible(),
        FieldLayout::Interlaced,
        petsc_fun3d_repro::euler::residual::SpatialOrder::First,
    );
    let q = disc.initial_state();
    let jac = disc.jacobian(&q);
    let mut mem = MemoryHierarchy::origin2000();
    let s = csr_spmv_trace(&jac, &mut mem);
    println!(
        "\nSpMV on the Jacobian ({} rows, {} nnz, bandwidth {}):",
        jac.nrows(),
        jac.nnz(),
        jac.bandwidth()
    );
    println!(
        "  simulated: {} L2 misses, {} TLB misses",
        s.l2_misses, s.tlb_misses
    );
    println!(
        "  Eq. 1 vs Eq. 2 predicted improvement from interlacing at this size: {:.0}x",
        predicted_improvement(jac.nrows(), jac.bandwidth(), 64 * 1024, 16).min(1e6)
    );

    // --- 3. The bandwidth model: what SpMV can possibly run at ---
    let stream = run_stream(2 * 1024 * 1024, 2);
    println!("\nhost STREAM triad: {:.0} MB/s", stream.triad / 1e6);
    let nb = jac.nrows() / 4;
    let nblocks = jac.nnz() / 16; // approximate block count
    let t_csr = csr_traffic(jac.nrows(), jac.nnz(), 1.2);
    let t_bcsr = bcsr_traffic(nb, nblocks, 4, 1.2);
    println!(
        "  predicted SpMV Mflop/s on this host:  CSR {:.0}, BCSR(4) {:.0}",
        predicted_mflops(jac.nnz(), &t_csr, stream.triad),
        predicted_mflops(jac.nnz(), &t_bcsr, stream.triad)
    );
    for m in [MachineSpec::asci_red(), MachineSpec::origin2000()] {
        println!(
            "  predicted SpMV Mflop/s on {:<16}: CSR {:.0}, BCSR(4) {:.0}  (peak {:.0})",
            m.name,
            predicted_mflops(jac.nnz(), &t_csr, m.stream_bytes_per_s),
            predicted_mflops(jac.nnz(), &t_bcsr, m.stream_bytes_per_s),
            m.peak_flops_per_cpu() / 1e6
        );
    }
    println!("\nThe point of Section 2: these kernels live at a small fraction of peak on every");
    println!("machine — the lever is memory layout, not floating-point scheduling.");
}
