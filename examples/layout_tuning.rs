//! Layout tuning walkthrough (the Table 1 story in miniature): measure the
//! time per pseudo-timestep under each combination of the paper's three
//! data-layout enhancements.
//!
//! ```sh
//! cargo run --release --example layout_tuning
//! ```

use petsc_fun3d_repro::core::config::{CaseConfig, LayoutConfig};
use petsc_fun3d_repro::core::driver::run_case;
use petsc_fun3d_repro::euler::model::FlowModel;
use petsc_fun3d_repro::euler::residual::SpatialOrder;
use petsc_fun3d_repro::mesh::generator::BumpChannelSpec;
use petsc_fun3d_repro::solver::gmres::GmresOptions;
use petsc_fun3d_repro::solver::pseudo::{Forcing, PrecondSpec, PseudoTransientOptions};
use petsc_fun3d_repro::sparse::ilu::IluOptions;

fn main() {
    let mesh = BumpChannelSpec::with_target_vertices(8_000);
    println!(
        "Euler flow over a bump, {} vertices; 3 timed steps per layout\n",
        mesh.nverts()
    );
    println!("interlace  block  reorder   time/step   speedup");

    let mut baseline = None;
    for (layout, flags) in LayoutConfig::table1_rows() {
        let cfg = CaseConfig {
            mesh,
            model: FlowModel::incompressible(),
            layout,
            order: SpatialOrder::First,
            nks: PseudoTransientOptions {
                cfl0: 5.0,
                cfl_exponent: 1.0,
                cfl_max: 1e5,
                max_steps: 3,
                target_reduction: 0.0,
                // Fixed linear work so layouts do identical arithmetic.
                krylov: GmresOptions {
                    restart: 20,
                    rtol: 0.0,
                    max_iters: 15,
                    ..Default::default()
                },
                precond: PrecondSpec::Ilu(IluOptions::with_fill(0)),
                second_order_switch: None,
                matrix_free: false,
                line_search: false,
                bcsr_block: None,
                forcing: Forcing::Constant,
                pc_refresh: 1,
            },
        };
        let report = run_case(&cfg);
        let t = report.time_per_step();
        let base = *baseline.get_or_insert(t);
        let mark = |b: bool| if b { "yes" } else { "  -" };
        println!(
            "{:>9}  {:>5}  {:>7}   {:8.1} ms   {:6.2}x",
            mark(flags[0]),
            mark(flags[1]),
            mark(flags[2]),
            t * 1e3,
            base / t
        );
    }
    println!("\nThe paper's Table 1 reports up to 5.7x from the combination on a 1997 R10000;");
    println!("modern prefetchers recover part of the gap, but the ranking should persist.");
}
