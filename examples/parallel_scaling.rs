//! Distributed solve demo: partition the Euler Jacobian across message-
//! passing ranks, solve with block-Jacobi/ILU GMRES, and decompose the
//! parallel efficiency the way the paper's Table 3 does.
//!
//! Ranks are real threads exchanging real messages; alongside wall time,
//! each rank advances a *simulated clock* on the ASCI Red machine model, so
//! the run reports both what happened on this laptop and what it would cost
//! on the paper's hardware.
//!
//! ```sh
//! cargo run --release --example parallel_scaling
//! ```

use petsc_fun3d_repro::core::dist::parallel_block_jacobi_solve;
use petsc_fun3d_repro::core::efficiency::{efficiency_table, ScalingPoint};
use petsc_fun3d_repro::euler::model::FlowModel;
use petsc_fun3d_repro::euler::residual::{Discretization, SpatialOrder};
use petsc_fun3d_repro::memmodel::machine::MachineSpec;
use petsc_fun3d_repro::mesh::generator::BumpChannelSpec;
use petsc_fun3d_repro::partition::partition_kway;
use petsc_fun3d_repro::solver::gmres::GmresOptions;
use petsc_fun3d_repro::sparse::ilu::IluOptions;
use petsc_fun3d_repro::sparse::layout::FieldLayout;

fn main() {
    let mesh = BumpChannelSpec::with_target_vertices(6_000).build();
    let ncomp = 4usize;
    let disc = Discretization::new(
        &mesh,
        FlowModel::incompressible(),
        FieldLayout::Interlaced,
        SpatialOrder::First,
    );
    let q = disc.initial_state();
    let mut jac = disc.jacobian(&q);
    let scale = disc.wavespeed_sums(&q);
    let d: Vec<f64> = (0..mesh.nverts())
        .flat_map(|v| std::iter::repeat_n(scale[v], ncomp))
        .collect();
    jac.shift_diagonal_by(1.0 / 50.0, &d);
    let n = jac.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) / 6.0).collect();
    let graph = mesh.vertex_graph();
    println!("distributed block-Jacobi GMRES on a {n}-unknown Euler Jacobian\n");

    let machine = MachineSpec::asci_red();
    let mut points = Vec::new();
    println!("ranks   its   sim time   scatter bytes   sync wait (max rank)");
    for p in [1usize, 2, 4, 8] {
        let part = partition_kway(&graph, p, 3);
        let owner: Vec<u32> = part
            .part
            .iter()
            .flat_map(|&pp| std::iter::repeat_n(pp, ncomp))
            .collect();
        let report = parallel_block_jacobi_solve(
            &jac,
            &b,
            &owner,
            p,
            &machine,
            &IluOptions::with_fill(1),
            &GmresOptions {
                restart: 20,
                rtol: 1e-8,
                max_iters: 2000,
                ..Default::default()
            },
        );
        assert!(report.result.converged);
        let max_sync = report
            .breakdowns
            .iter()
            .map(|bd| bd.implicit_sync)
            .fold(0.0f64, f64::max);
        println!(
            "{:5}  {:4}   {:7.4}s   {:11.0}   {:.4}s",
            p, report.result.iterations, report.sim_time, report.total_bytes_sent, max_sync
        );
        points.push(ScalingPoint {
            nprocs: p,
            its: report.result.iterations,
            time: report.sim_time,
        });
    }

    println!("\nefficiency decomposition (eta_overall = eta_alg x eta_impl):");
    for row in efficiency_table(&points) {
        println!(
            "  p={:2}  speedup {:4.2}  overall {:4.2} = alg {:4.2} x impl {:4.2}",
            row.nprocs, row.speedup, row.eta_overall, row.eta_alg, row.eta_impl
        );
    }
    println!("\nThe algorithmic term (iteration growth with more Jacobi blocks) is what the");
    println!("paper identifies as the dominant scalability limit of non-coarse-grid NKS.");
}
