//! Quickstart: solve steady incompressible Euler flow over a wing-like bump
//! with the pseudo-transient Newton-Krylov-Schwarz solver.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use petsc_fun3d_repro::core::config::{CaseConfig, LayoutConfig};
use petsc_fun3d_repro::core::problem::EulerProblem;
use petsc_fun3d_repro::euler::model::FlowModel;
use petsc_fun3d_repro::euler::residual::{Discretization, SpatialOrder};
use petsc_fun3d_repro::mesh::generator::BumpChannelSpec;
use petsc_fun3d_repro::solver::gmres::GmresOptions;
use petsc_fun3d_repro::solver::pseudo::{
    solve_pseudo_transient, Forcing, PrecondSpec, PseudoTransientOptions,
};
use petsc_fun3d_repro::sparse::ilu::IluOptions;

fn main() {
    // 1. A mesh: a graded, jittered tetrahedral channel with a wing-like
    //    bump (~5k vertices; crank this up for a real run).
    let cfg = CaseConfig {
        mesh: BumpChannelSpec::with_target_vertices(5_000),
        model: FlowModel::incompressible(),
        layout: LayoutConfig::tuned(), // interlaced + blocked + RCM + sorted edges
        order: SpatialOrder::First,
        nks: PseudoTransientOptions::default(),
    };
    let mesh = cfg.build_mesh();
    println!(
        "mesh: {} vertices, {} tets, {} edges (geometry closure residual {:.1e})",
        mesh.nverts(),
        mesh.ntets(),
        mesh.nedges(),
        mesh.closure_residual()
    );

    // 2. The discretization and the nonlinear problem.
    let disc = Discretization::new(&mesh, cfg.model, cfg.layout.field_layout(), cfg.order);
    let mut problem = EulerProblem::new(disc);
    let mut q = problem.initial_state();

    // 3. Solve with SER pseudo-transient continuation; the linear systems
    //    use GMRES(20) with an ILU(1) preconditioner built from the
    //    first-order analytic Jacobian.
    let opts = PseudoTransientOptions {
        cfl0: 5.0,
        cfl_exponent: 1.2,
        cfl_max: 1e6,
        max_steps: 60,
        target_reduction: 1e-10,
        krylov: GmresOptions {
            restart: 20,
            rtol: 1e-2,
            max_iters: 120,
            ..Default::default()
        },
        precond: PrecondSpec::Ilu(IluOptions::with_fill(1)),
        second_order_switch: None,
        matrix_free: false,
        line_search: true,
        bcsr_block: Some(4),
        forcing: Forcing::Constant,
        pc_refresh: 1,
    };
    let history = solve_pseudo_transient(&mut problem, &mut q, &opts);

    // 4. Report.
    for s in history.steps.iter().step_by(5) {
        println!(
            "  step {:3}  CFL {:9.2e}  |R| {:10.3e}  {} linear its",
            s.step, s.cfl, s.residual_norm, s.linear_iters
        );
    }
    println!(
        "converged: {} — residual reduced {:.1e}x in {} steps ({} total linear its, {:.2}s)",
        history.converged,
        1.0 / history.reduction(),
        history.nsteps(),
        history.total_linear_iters(),
        history.total_time()
    );

    // 5. Optionally dump the converged field for ParaView:
    //    `cargo run --release --example quickstart -- flow.vtk`
    if let Some(path) = std::env::args().nth(1) {
        use petsc_fun3d_repro::core::output::write_vtk_file;
        use petsc_fun3d_repro::euler::field::FieldVec;
        let field = FieldVec::from_vec(q, mesh.nverts(), 4, cfg.layout.field_layout());
        write_vtk_file(
            std::path::Path::new(&path),
            &mesh,
            Some((&field, &cfg.model)),
        )
        .expect("VTK write failed");
        println!("wrote {path}");
    }
}
