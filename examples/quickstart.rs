//! Quickstart: solve steady incompressible Euler flow over a wing-like bump
//! with the pseudo-transient Newton-Krylov-Schwarz solver.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use petsc_fun3d_repro::core::config::{CaseConfig, LayoutConfig};
use petsc_fun3d_repro::core::problem::EulerProblem;
use petsc_fun3d_repro::euler::model::FlowModel;
use petsc_fun3d_repro::euler::residual::{Discretization, SpatialOrder};
use petsc_fun3d_repro::mesh::generator::BumpChannelSpec;
use petsc_fun3d_repro::solver::gmres::GmresOptions;
use petsc_fun3d_repro::solver::pseudo::{
    solve_pseudo_transient_with_events, Forcing, PrecondSpec, PseudoTransientOptions,
};
use petsc_fun3d_repro::sparse::ilu::IluOptions;
use petsc_fun3d_repro::telemetry::events::{convergence_table, EventSink, EventStream};
use petsc_fun3d_repro::telemetry::Registry;

fn main() {
    // 1. A mesh: a graded, jittered tetrahedral channel with a wing-like
    //    bump (~5k vertices; crank this up for a real run).
    let cfg = CaseConfig {
        mesh: BumpChannelSpec::with_target_vertices(5_000),
        model: FlowModel::incompressible(),
        layout: LayoutConfig::tuned(), // interlaced + blocked + RCM + sorted edges
        order: SpatialOrder::First,
        nks: PseudoTransientOptions::default(),
    };
    let mesh = cfg.build_mesh();
    println!(
        "mesh: {} vertices, {} tets, {} edges (geometry closure residual {:.1e})",
        mesh.nverts(),
        mesh.ntets(),
        mesh.nedges(),
        mesh.closure_residual()
    );

    // 2. The discretization and the nonlinear problem.
    let disc = Discretization::new(&mesh, cfg.model, cfg.layout.field_layout(), cfg.order);
    let mut problem = EulerProblem::new(disc);
    let mut q = problem.initial_state();

    // 3. Solve with SER pseudo-transient continuation; the linear systems
    //    use GMRES(20) with an ILU(1) preconditioner built from the
    //    first-order analytic Jacobian.
    let opts = PseudoTransientOptions {
        cfl0: 5.0,
        cfl_exponent: 1.2,
        cfl_max: 1e6,
        max_steps: 60,
        target_reduction: 1e-10,
        krylov: GmresOptions {
            restart: 20,
            rtol: 1e-2,
            max_iters: 120,
            ..Default::default()
        },
        precond: PrecondSpec::Ilu(IluOptions::with_fill(1)),
        second_order_switch: None,
        matrix_free: false,
        line_search: true,
        bcsr_block: Some(4),
        forcing: Forcing::Constant,
        pc_refresh: 1,
    };
    // Telemetry on: spans (with latency histograms) land in `tel`, the
    // per-iteration event stream (`fun3d-events/1`) lands in `sink`.
    let tel = Registry::enabled(0);
    let sink = EventSink::enabled();
    let history = solve_pseudo_transient_with_events(&mut problem, &mut q, &opts, &tel, &sink);

    // 4. Report: the Figure 5-style convergence table straight from the
    //    event stream, then the run summary.
    let events = EventStream::new(sink.drain());
    println!("\n{}", convergence_table(&events));
    println!(
        "converged: {} — residual reduced {:.1e}x in {} steps ({} total linear its, {:.2}s)",
        history.converged,
        1.0 / history.reduction(),
        history.nsteps(),
        history.total_linear_iters(),
        history.total_time()
    );

    // Phase breakdown with tail latencies from the span histograms.
    println!("\nphase breakdown (p95 per call from log-bucket histograms):");
    for row in &tel.snapshot().spans {
        println!(
            "  {:<24} {:4} calls  {:8.3}s total  p95 {}",
            row.path,
            row.calls,
            row.total_s,
            row.p95().map_or("    -".into(), |p| format!("{p:.2e}s")),
        );
    }

    // 5. Optionally dump the converged field for ParaView:
    //    `cargo run --release --example quickstart -- flow.vtk`
    if let Some(path) = std::env::args().nth(1) {
        use petsc_fun3d_repro::core::output::write_vtk_file;
        use petsc_fun3d_repro::euler::field::FieldVec;
        let field = FieldVec::from_vec(q, mesh.nverts(), 4, cfg.layout.field_layout());
        write_vtk_file(
            std::path::Path::new(&path),
            &mesh,
            Some((&field, &cfg.model)),
        )
        .expect("VTK write failed");
        println!("wrote {path}");
    }
}
