//! # petsc-fun3d-repro
//!
//! Root meta-crate of the Rust reproduction of Gropp, Kaushik, Keyes &
//! Smith, *Performance Modeling and Tuning of an Unstructured Mesh CFD
//! Application* (SC 2000).  It re-exports the workspace crates under short
//! names so the examples and cross-crate integration tests read naturally:
//!
//! ```
//! use petsc_fun3d_repro::mesh::generator::BumpChannelSpec;
//! use petsc_fun3d_repro::euler::model::FlowModel;
//!
//! let mesh = BumpChannelSpec::with_dims(4, 3, 3).build();
//! assert!(mesh.closure_residual() < 1e-10);
//! assert_eq!(FlowModel::incompressible().ncomp(), 4);
//! ```
//!
//! See the individual crates for the substance:
//! [`mesh`], [`sparse`], [`partition`], [`memmodel`], [`comm`], [`euler`],
//! [`solver`], [`telemetry`], and [`core`] (the application layer).

pub use fun3d_comm as comm;
pub use fun3d_core as core;
pub use fun3d_euler as euler;
pub use fun3d_memmodel as memmodel;
pub use fun3d_mesh as mesh;
pub use fun3d_partition as partition;
pub use fun3d_solver as solver;
pub use fun3d_sparse as sparse;
pub use fun3d_telemetry as telemetry;
