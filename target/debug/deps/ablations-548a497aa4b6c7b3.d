/root/repo/target/debug/deps/ablations-548a497aa4b6c7b3.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-548a497aa4b6c7b3.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
