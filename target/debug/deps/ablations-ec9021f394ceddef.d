/root/repo/target/debug/deps/ablations-ec9021f394ceddef.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-ec9021f394ceddef: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
