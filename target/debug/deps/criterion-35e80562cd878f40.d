/root/repo/target/debug/deps/criterion-35e80562cd878f40.d: crates/criterion-compat/src/lib.rs

/root/repo/target/debug/deps/criterion-35e80562cd878f40: crates/criterion-compat/src/lib.rs

crates/criterion-compat/src/lib.rs:
