/root/repo/target/debug/deps/criterion-56d020e13c86dae2.d: crates/criterion-compat/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-56d020e13c86dae2.rmeta: crates/criterion-compat/src/lib.rs Cargo.toml

crates/criterion-compat/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
