/root/repo/target/debug/deps/criterion-b37977f63ec452d6.d: crates/criterion-compat/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b37977f63ec452d6.rlib: crates/criterion-compat/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b37977f63ec452d6.rmeta: crates/criterion-compat/src/lib.rs

crates/criterion-compat/src/lib.rs:
