/root/repo/target/debug/deps/criterion-c5716499f47d831b.d: crates/criterion-compat/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-c5716499f47d831b.rmeta: crates/criterion-compat/src/lib.rs Cargo.toml

crates/criterion-compat/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
