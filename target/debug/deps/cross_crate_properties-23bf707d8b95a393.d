/root/repo/target/debug/deps/cross_crate_properties-23bf707d8b95a393.d: tests/cross_crate_properties.rs

/root/repo/target/debug/deps/cross_crate_properties-23bf707d8b95a393: tests/cross_crate_properties.rs

tests/cross_crate_properties.rs:
