/root/repo/target/debug/deps/cross_crate_properties-3f9e123f2f5b6501.d: tests/cross_crate_properties.rs Cargo.toml

/root/repo/target/debug/deps/libcross_crate_properties-3f9e123f2f5b6501.rmeta: tests/cross_crate_properties.rs Cargo.toml

tests/cross_crate_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
