/root/repo/target/debug/deps/edge_cases-7a48e5f76b0a28f7.d: tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-7a48e5f76b0a28f7.rmeta: tests/edge_cases.rs Cargo.toml

tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
