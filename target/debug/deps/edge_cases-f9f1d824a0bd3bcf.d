/root/repo/target/debug/deps/edge_cases-f9f1d824a0bd3bcf.d: tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-f9f1d824a0bd3bcf: tests/edge_cases.rs

tests/edge_cases.rs:
