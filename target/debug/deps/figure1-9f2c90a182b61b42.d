/root/repo/target/debug/deps/figure1-9f2c90a182b61b42.d: crates/bench/src/bin/figure1.rs

/root/repo/target/debug/deps/figure1-9f2c90a182b61b42: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:
