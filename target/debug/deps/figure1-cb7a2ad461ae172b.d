/root/repo/target/debug/deps/figure1-cb7a2ad461ae172b.d: crates/bench/src/bin/figure1.rs Cargo.toml

/root/repo/target/debug/deps/libfigure1-cb7a2ad461ae172b.rmeta: crates/bench/src/bin/figure1.rs Cargo.toml

crates/bench/src/bin/figure1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
