/root/repo/target/debug/deps/figure2-1ee4a0fbe71d233d.d: crates/bench/src/bin/figure2.rs Cargo.toml

/root/repo/target/debug/deps/libfigure2-1ee4a0fbe71d233d.rmeta: crates/bench/src/bin/figure2.rs Cargo.toml

crates/bench/src/bin/figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
