/root/repo/target/debug/deps/figure2-acac96e7d6b6cad0.d: crates/bench/src/bin/figure2.rs Cargo.toml

/root/repo/target/debug/deps/libfigure2-acac96e7d6b6cad0.rmeta: crates/bench/src/bin/figure2.rs Cargo.toml

crates/bench/src/bin/figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
