/root/repo/target/debug/deps/figure2-b94e4d95979ad4a2.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-b94e4d95979ad4a2: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
