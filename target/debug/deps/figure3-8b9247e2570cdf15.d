/root/repo/target/debug/deps/figure3-8b9247e2570cdf15.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-8b9247e2570cdf15: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
