/root/repo/target/debug/deps/figure3-8d8ff5d6325e9fe1.d: crates/bench/src/bin/figure3.rs Cargo.toml

/root/repo/target/debug/deps/libfigure3-8d8ff5d6325e9fe1.rmeta: crates/bench/src/bin/figure3.rs Cargo.toml

crates/bench/src/bin/figure3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
