/root/repo/target/debug/deps/figure4-02e90ed8691384ec.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-02e90ed8691384ec: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
