/root/repo/target/debug/deps/figure4-ef7ce2ac72462b2e.d: crates/bench/src/bin/figure4.rs Cargo.toml

/root/repo/target/debug/deps/libfigure4-ef7ce2ac72462b2e.rmeta: crates/bench/src/bin/figure4.rs Cargo.toml

crates/bench/src/bin/figure4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
