/root/repo/target/debug/deps/figure4-f5c9a7221463f8d5.d: crates/bench/src/bin/figure4.rs Cargo.toml

/root/repo/target/debug/deps/libfigure4-f5c9a7221463f8d5.rmeta: crates/bench/src/bin/figure4.rs Cargo.toml

crates/bench/src/bin/figure4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
