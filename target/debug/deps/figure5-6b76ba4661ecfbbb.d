/root/repo/target/debug/deps/figure5-6b76ba4661ecfbbb.d: crates/bench/src/bin/figure5.rs

/root/repo/target/debug/deps/figure5-6b76ba4661ecfbbb: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:
