/root/repo/target/debug/deps/figure5-a5d540772e42e71d.d: crates/bench/src/bin/figure5.rs Cargo.toml

/root/repo/target/debug/deps/libfigure5-a5d540772e42e71d.rmeta: crates/bench/src/bin/figure5.rs Cargo.toml

crates/bench/src/bin/figure5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
