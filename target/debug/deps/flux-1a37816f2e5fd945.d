/root/repo/target/debug/deps/flux-1a37816f2e5fd945.d: crates/bench/benches/flux.rs Cargo.toml

/root/repo/target/debug/deps/libflux-1a37816f2e5fd945.rmeta: crates/bench/benches/flux.rs Cargo.toml

crates/bench/benches/flux.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
