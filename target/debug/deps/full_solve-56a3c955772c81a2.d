/root/repo/target/debug/deps/full_solve-56a3c955772c81a2.d: tests/full_solve.rs

/root/repo/target/debug/deps/full_solve-56a3c955772c81a2: tests/full_solve.rs

tests/full_solve.rs:
