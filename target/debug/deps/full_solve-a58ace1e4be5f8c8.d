/root/repo/target/debug/deps/full_solve-a58ace1e4be5f8c8.d: tests/full_solve.rs Cargo.toml

/root/repo/target/debug/deps/libfull_solve-a58ace1e4be5f8c8.rmeta: tests/full_solve.rs Cargo.toml

tests/full_solve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
