/root/repo/target/debug/deps/fun3d-170da0db15403d47.d: crates/core/src/bin/fun3d.rs Cargo.toml

/root/repo/target/debug/deps/libfun3d-170da0db15403d47.rmeta: crates/core/src/bin/fun3d.rs Cargo.toml

crates/core/src/bin/fun3d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
