/root/repo/target/debug/deps/fun3d-36c607a448bdbbee.d: crates/core/src/bin/fun3d.rs Cargo.toml

/root/repo/target/debug/deps/libfun3d-36c607a448bdbbee.rmeta: crates/core/src/bin/fun3d.rs Cargo.toml

crates/core/src/bin/fun3d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
