/root/repo/target/debug/deps/fun3d-6b6534c327fef981.d: crates/core/src/bin/fun3d.rs

/root/repo/target/debug/deps/fun3d-6b6534c327fef981: crates/core/src/bin/fun3d.rs

crates/core/src/bin/fun3d.rs:
