/root/repo/target/debug/deps/fun3d_bench-21929003c5474948.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fun3d_bench-21929003c5474948: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
