/root/repo/target/debug/deps/fun3d_bench-b1b3ac203d75e48d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfun3d_bench-b1b3ac203d75e48d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfun3d_bench-b1b3ac203d75e48d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
