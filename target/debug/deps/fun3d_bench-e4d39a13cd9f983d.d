/root/repo/target/debug/deps/fun3d_bench-e4d39a13cd9f983d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfun3d_bench-e4d39a13cd9f983d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
