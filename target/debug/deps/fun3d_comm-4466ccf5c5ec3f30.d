/root/repo/target/debug/deps/fun3d_comm-4466ccf5c5ec3f30.d: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/scatter.rs crates/comm/src/smp.rs crates/comm/src/world.rs

/root/repo/target/debug/deps/fun3d_comm-4466ccf5c5ec3f30: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/scatter.rs crates/comm/src/smp.rs crates/comm/src/world.rs

crates/comm/src/lib.rs:
crates/comm/src/clock.rs:
crates/comm/src/scatter.rs:
crates/comm/src/smp.rs:
crates/comm/src/world.rs:
