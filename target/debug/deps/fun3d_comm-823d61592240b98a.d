/root/repo/target/debug/deps/fun3d_comm-823d61592240b98a.d: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/scatter.rs crates/comm/src/smp.rs crates/comm/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libfun3d_comm-823d61592240b98a.rmeta: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/scatter.rs crates/comm/src/smp.rs crates/comm/src/world.rs Cargo.toml

crates/comm/src/lib.rs:
crates/comm/src/clock.rs:
crates/comm/src/scatter.rs:
crates/comm/src/smp.rs:
crates/comm/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
