/root/repo/target/debug/deps/fun3d_comm-d8709c619c09c6a4.d: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/scatter.rs crates/comm/src/smp.rs crates/comm/src/world.rs

/root/repo/target/debug/deps/libfun3d_comm-d8709c619c09c6a4.rlib: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/scatter.rs crates/comm/src/smp.rs crates/comm/src/world.rs

/root/repo/target/debug/deps/libfun3d_comm-d8709c619c09c6a4.rmeta: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/scatter.rs crates/comm/src/smp.rs crates/comm/src/world.rs

crates/comm/src/lib.rs:
crates/comm/src/clock.rs:
crates/comm/src/scatter.rs:
crates/comm/src/smp.rs:
crates/comm/src/world.rs:
