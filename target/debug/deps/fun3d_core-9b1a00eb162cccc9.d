/root/repo/target/debug/deps/fun3d_core-9b1a00eb162cccc9.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/dist.rs crates/core/src/driver.rs crates/core/src/efficiency.rs crates/core/src/output.rs crates/core/src/parallel_nks.rs crates/core/src/problem.rs crates/core/src/scaling.rs

/root/repo/target/debug/deps/libfun3d_core-9b1a00eb162cccc9.rlib: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/dist.rs crates/core/src/driver.rs crates/core/src/efficiency.rs crates/core/src/output.rs crates/core/src/parallel_nks.rs crates/core/src/problem.rs crates/core/src/scaling.rs

/root/repo/target/debug/deps/libfun3d_core-9b1a00eb162cccc9.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/dist.rs crates/core/src/driver.rs crates/core/src/efficiency.rs crates/core/src/output.rs crates/core/src/parallel_nks.rs crates/core/src/problem.rs crates/core/src/scaling.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/config.rs:
crates/core/src/dist.rs:
crates/core/src/driver.rs:
crates/core/src/efficiency.rs:
crates/core/src/output.rs:
crates/core/src/parallel_nks.rs:
crates/core/src/problem.rs:
crates/core/src/scaling.rs:
