/root/repo/target/debug/deps/fun3d_core-d60eb9847d68767e.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/dist.rs crates/core/src/driver.rs crates/core/src/efficiency.rs crates/core/src/output.rs crates/core/src/parallel_nks.rs crates/core/src/problem.rs crates/core/src/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfun3d_core-d60eb9847d68767e.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/config.rs crates/core/src/dist.rs crates/core/src/driver.rs crates/core/src/efficiency.rs crates/core/src/output.rs crates/core/src/parallel_nks.rs crates/core/src/problem.rs crates/core/src/scaling.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/config.rs:
crates/core/src/dist.rs:
crates/core/src/driver.rs:
crates/core/src/efficiency.rs:
crates/core/src/output.rs:
crates/core/src/parallel_nks.rs:
crates/core/src/problem.rs:
crates/core/src/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
