/root/repo/target/debug/deps/fun3d_euler-01c92f7599995fae.d: crates/euler/src/lib.rs crates/euler/src/field.rs crates/euler/src/gradient.rs crates/euler/src/model.rs crates/euler/src/residual.rs Cargo.toml

/root/repo/target/debug/deps/libfun3d_euler-01c92f7599995fae.rmeta: crates/euler/src/lib.rs crates/euler/src/field.rs crates/euler/src/gradient.rs crates/euler/src/model.rs crates/euler/src/residual.rs Cargo.toml

crates/euler/src/lib.rs:
crates/euler/src/field.rs:
crates/euler/src/gradient.rs:
crates/euler/src/model.rs:
crates/euler/src/residual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
