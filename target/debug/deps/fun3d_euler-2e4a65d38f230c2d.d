/root/repo/target/debug/deps/fun3d_euler-2e4a65d38f230c2d.d: crates/euler/src/lib.rs crates/euler/src/field.rs crates/euler/src/gradient.rs crates/euler/src/model.rs crates/euler/src/residual.rs

/root/repo/target/debug/deps/libfun3d_euler-2e4a65d38f230c2d.rlib: crates/euler/src/lib.rs crates/euler/src/field.rs crates/euler/src/gradient.rs crates/euler/src/model.rs crates/euler/src/residual.rs

/root/repo/target/debug/deps/libfun3d_euler-2e4a65d38f230c2d.rmeta: crates/euler/src/lib.rs crates/euler/src/field.rs crates/euler/src/gradient.rs crates/euler/src/model.rs crates/euler/src/residual.rs

crates/euler/src/lib.rs:
crates/euler/src/field.rs:
crates/euler/src/gradient.rs:
crates/euler/src/model.rs:
crates/euler/src/residual.rs:
