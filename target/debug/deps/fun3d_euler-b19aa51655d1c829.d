/root/repo/target/debug/deps/fun3d_euler-b19aa51655d1c829.d: crates/euler/src/lib.rs crates/euler/src/field.rs crates/euler/src/gradient.rs crates/euler/src/model.rs crates/euler/src/residual.rs

/root/repo/target/debug/deps/fun3d_euler-b19aa51655d1c829: crates/euler/src/lib.rs crates/euler/src/field.rs crates/euler/src/gradient.rs crates/euler/src/model.rs crates/euler/src/residual.rs

crates/euler/src/lib.rs:
crates/euler/src/field.rs:
crates/euler/src/gradient.rs:
crates/euler/src/model.rs:
crates/euler/src/residual.rs:
