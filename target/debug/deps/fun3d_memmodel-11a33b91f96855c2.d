/root/repo/target/debug/deps/fun3d_memmodel-11a33b91f96855c2.d: crates/memmodel/src/lib.rs crates/memmodel/src/bounds.rs crates/memmodel/src/cache.rs crates/memmodel/src/hierarchy.rs crates/memmodel/src/machine.rs crates/memmodel/src/sched.rs crates/memmodel/src/spmv_model.rs crates/memmodel/src/stream.rs crates/memmodel/src/trace.rs

/root/repo/target/debug/deps/libfun3d_memmodel-11a33b91f96855c2.rlib: crates/memmodel/src/lib.rs crates/memmodel/src/bounds.rs crates/memmodel/src/cache.rs crates/memmodel/src/hierarchy.rs crates/memmodel/src/machine.rs crates/memmodel/src/sched.rs crates/memmodel/src/spmv_model.rs crates/memmodel/src/stream.rs crates/memmodel/src/trace.rs

/root/repo/target/debug/deps/libfun3d_memmodel-11a33b91f96855c2.rmeta: crates/memmodel/src/lib.rs crates/memmodel/src/bounds.rs crates/memmodel/src/cache.rs crates/memmodel/src/hierarchy.rs crates/memmodel/src/machine.rs crates/memmodel/src/sched.rs crates/memmodel/src/spmv_model.rs crates/memmodel/src/stream.rs crates/memmodel/src/trace.rs

crates/memmodel/src/lib.rs:
crates/memmodel/src/bounds.rs:
crates/memmodel/src/cache.rs:
crates/memmodel/src/hierarchy.rs:
crates/memmodel/src/machine.rs:
crates/memmodel/src/sched.rs:
crates/memmodel/src/spmv_model.rs:
crates/memmodel/src/stream.rs:
crates/memmodel/src/trace.rs:
