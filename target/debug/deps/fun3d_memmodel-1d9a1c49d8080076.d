/root/repo/target/debug/deps/fun3d_memmodel-1d9a1c49d8080076.d: crates/memmodel/src/lib.rs crates/memmodel/src/bounds.rs crates/memmodel/src/cache.rs crates/memmodel/src/hierarchy.rs crates/memmodel/src/machine.rs crates/memmodel/src/sched.rs crates/memmodel/src/spmv_model.rs crates/memmodel/src/stream.rs crates/memmodel/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libfun3d_memmodel-1d9a1c49d8080076.rmeta: crates/memmodel/src/lib.rs crates/memmodel/src/bounds.rs crates/memmodel/src/cache.rs crates/memmodel/src/hierarchy.rs crates/memmodel/src/machine.rs crates/memmodel/src/sched.rs crates/memmodel/src/spmv_model.rs crates/memmodel/src/stream.rs crates/memmodel/src/trace.rs Cargo.toml

crates/memmodel/src/lib.rs:
crates/memmodel/src/bounds.rs:
crates/memmodel/src/cache.rs:
crates/memmodel/src/hierarchy.rs:
crates/memmodel/src/machine.rs:
crates/memmodel/src/sched.rs:
crates/memmodel/src/spmv_model.rs:
crates/memmodel/src/stream.rs:
crates/memmodel/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
