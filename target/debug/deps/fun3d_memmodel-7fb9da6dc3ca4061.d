/root/repo/target/debug/deps/fun3d_memmodel-7fb9da6dc3ca4061.d: crates/memmodel/src/lib.rs crates/memmodel/src/bounds.rs crates/memmodel/src/cache.rs crates/memmodel/src/hierarchy.rs crates/memmodel/src/machine.rs crates/memmodel/src/sched.rs crates/memmodel/src/spmv_model.rs crates/memmodel/src/stream.rs crates/memmodel/src/trace.rs

/root/repo/target/debug/deps/fun3d_memmodel-7fb9da6dc3ca4061: crates/memmodel/src/lib.rs crates/memmodel/src/bounds.rs crates/memmodel/src/cache.rs crates/memmodel/src/hierarchy.rs crates/memmodel/src/machine.rs crates/memmodel/src/sched.rs crates/memmodel/src/spmv_model.rs crates/memmodel/src/stream.rs crates/memmodel/src/trace.rs

crates/memmodel/src/lib.rs:
crates/memmodel/src/bounds.rs:
crates/memmodel/src/cache.rs:
crates/memmodel/src/hierarchy.rs:
crates/memmodel/src/machine.rs:
crates/memmodel/src/sched.rs:
crates/memmodel/src/spmv_model.rs:
crates/memmodel/src/stream.rs:
crates/memmodel/src/trace.rs:
