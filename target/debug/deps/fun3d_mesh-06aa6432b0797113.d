/root/repo/target/debug/deps/fun3d_mesh-06aa6432b0797113.d: crates/mesh/src/lib.rs crates/mesh/src/generator.rs crates/mesh/src/graph.rs crates/mesh/src/metrics.rs crates/mesh/src/reorder.rs crates/mesh/src/tet.rs

/root/repo/target/debug/deps/libfun3d_mesh-06aa6432b0797113.rlib: crates/mesh/src/lib.rs crates/mesh/src/generator.rs crates/mesh/src/graph.rs crates/mesh/src/metrics.rs crates/mesh/src/reorder.rs crates/mesh/src/tet.rs

/root/repo/target/debug/deps/libfun3d_mesh-06aa6432b0797113.rmeta: crates/mesh/src/lib.rs crates/mesh/src/generator.rs crates/mesh/src/graph.rs crates/mesh/src/metrics.rs crates/mesh/src/reorder.rs crates/mesh/src/tet.rs

crates/mesh/src/lib.rs:
crates/mesh/src/generator.rs:
crates/mesh/src/graph.rs:
crates/mesh/src/metrics.rs:
crates/mesh/src/reorder.rs:
crates/mesh/src/tet.rs:
