/root/repo/target/debug/deps/fun3d_mesh-a9a452ad3b0efba9.d: crates/mesh/src/lib.rs crates/mesh/src/generator.rs crates/mesh/src/graph.rs crates/mesh/src/metrics.rs crates/mesh/src/reorder.rs crates/mesh/src/tet.rs Cargo.toml

/root/repo/target/debug/deps/libfun3d_mesh-a9a452ad3b0efba9.rmeta: crates/mesh/src/lib.rs crates/mesh/src/generator.rs crates/mesh/src/graph.rs crates/mesh/src/metrics.rs crates/mesh/src/reorder.rs crates/mesh/src/tet.rs Cargo.toml

crates/mesh/src/lib.rs:
crates/mesh/src/generator.rs:
crates/mesh/src/graph.rs:
crates/mesh/src/metrics.rs:
crates/mesh/src/reorder.rs:
crates/mesh/src/tet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
