/root/repo/target/debug/deps/fun3d_mesh-ec951edb461632de.d: crates/mesh/src/lib.rs crates/mesh/src/generator.rs crates/mesh/src/graph.rs crates/mesh/src/metrics.rs crates/mesh/src/reorder.rs crates/mesh/src/tet.rs

/root/repo/target/debug/deps/fun3d_mesh-ec951edb461632de: crates/mesh/src/lib.rs crates/mesh/src/generator.rs crates/mesh/src/graph.rs crates/mesh/src/metrics.rs crates/mesh/src/reorder.rs crates/mesh/src/tet.rs

crates/mesh/src/lib.rs:
crates/mesh/src/generator.rs:
crates/mesh/src/graph.rs:
crates/mesh/src/metrics.rs:
crates/mesh/src/reorder.rs:
crates/mesh/src/tet.rs:
