/root/repo/target/debug/deps/fun3d_partition-09182738e8e84d27.d: crates/partition/src/lib.rs crates/partition/src/overlap.rs crates/partition/src/refine.rs

/root/repo/target/debug/deps/libfun3d_partition-09182738e8e84d27.rlib: crates/partition/src/lib.rs crates/partition/src/overlap.rs crates/partition/src/refine.rs

/root/repo/target/debug/deps/libfun3d_partition-09182738e8e84d27.rmeta: crates/partition/src/lib.rs crates/partition/src/overlap.rs crates/partition/src/refine.rs

crates/partition/src/lib.rs:
crates/partition/src/overlap.rs:
crates/partition/src/refine.rs:
