/root/repo/target/debug/deps/fun3d_partition-df53441c429fd389.d: crates/partition/src/lib.rs crates/partition/src/overlap.rs crates/partition/src/refine.rs

/root/repo/target/debug/deps/fun3d_partition-df53441c429fd389: crates/partition/src/lib.rs crates/partition/src/overlap.rs crates/partition/src/refine.rs

crates/partition/src/lib.rs:
crates/partition/src/overlap.rs:
crates/partition/src/refine.rs:
