/root/repo/target/debug/deps/fun3d_partition-fb89fbbdd7b8a34f.d: crates/partition/src/lib.rs crates/partition/src/overlap.rs crates/partition/src/refine.rs Cargo.toml

/root/repo/target/debug/deps/libfun3d_partition-fb89fbbdd7b8a34f.rmeta: crates/partition/src/lib.rs crates/partition/src/overlap.rs crates/partition/src/refine.rs Cargo.toml

crates/partition/src/lib.rs:
crates/partition/src/overlap.rs:
crates/partition/src/refine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
