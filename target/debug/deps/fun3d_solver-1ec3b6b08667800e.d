/root/repo/target/debug/deps/fun3d_solver-1ec3b6b08667800e.d: crates/solver/src/lib.rs crates/solver/src/gmres.rs crates/solver/src/op.rs crates/solver/src/precond.rs crates/solver/src/pseudo.rs

/root/repo/target/debug/deps/libfun3d_solver-1ec3b6b08667800e.rlib: crates/solver/src/lib.rs crates/solver/src/gmres.rs crates/solver/src/op.rs crates/solver/src/precond.rs crates/solver/src/pseudo.rs

/root/repo/target/debug/deps/libfun3d_solver-1ec3b6b08667800e.rmeta: crates/solver/src/lib.rs crates/solver/src/gmres.rs crates/solver/src/op.rs crates/solver/src/precond.rs crates/solver/src/pseudo.rs

crates/solver/src/lib.rs:
crates/solver/src/gmres.rs:
crates/solver/src/op.rs:
crates/solver/src/precond.rs:
crates/solver/src/pseudo.rs:
