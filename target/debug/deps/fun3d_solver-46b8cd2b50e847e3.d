/root/repo/target/debug/deps/fun3d_solver-46b8cd2b50e847e3.d: crates/solver/src/lib.rs crates/solver/src/gmres.rs crates/solver/src/op.rs crates/solver/src/precond.rs crates/solver/src/pseudo.rs Cargo.toml

/root/repo/target/debug/deps/libfun3d_solver-46b8cd2b50e847e3.rmeta: crates/solver/src/lib.rs crates/solver/src/gmres.rs crates/solver/src/op.rs crates/solver/src/precond.rs crates/solver/src/pseudo.rs Cargo.toml

crates/solver/src/lib.rs:
crates/solver/src/gmres.rs:
crates/solver/src/op.rs:
crates/solver/src/precond.rs:
crates/solver/src/pseudo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
