/root/repo/target/debug/deps/fun3d_solver-b516259aa2869cb5.d: crates/solver/src/lib.rs crates/solver/src/gmres.rs crates/solver/src/op.rs crates/solver/src/precond.rs crates/solver/src/pseudo.rs

/root/repo/target/debug/deps/fun3d_solver-b516259aa2869cb5: crates/solver/src/lib.rs crates/solver/src/gmres.rs crates/solver/src/op.rs crates/solver/src/precond.rs crates/solver/src/pseudo.rs

crates/solver/src/lib.rs:
crates/solver/src/gmres.rs:
crates/solver/src/op.rs:
crates/solver/src/precond.rs:
crates/solver/src/pseudo.rs:
