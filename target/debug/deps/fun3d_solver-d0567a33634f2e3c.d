/root/repo/target/debug/deps/fun3d_solver-d0567a33634f2e3c.d: crates/solver/src/lib.rs crates/solver/src/gmres.rs crates/solver/src/op.rs crates/solver/src/precond.rs crates/solver/src/pseudo.rs Cargo.toml

/root/repo/target/debug/deps/libfun3d_solver-d0567a33634f2e3c.rmeta: crates/solver/src/lib.rs crates/solver/src/gmres.rs crates/solver/src/op.rs crates/solver/src/precond.rs crates/solver/src/pseudo.rs Cargo.toml

crates/solver/src/lib.rs:
crates/solver/src/gmres.rs:
crates/solver/src/op.rs:
crates/solver/src/precond.rs:
crates/solver/src/pseudo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
