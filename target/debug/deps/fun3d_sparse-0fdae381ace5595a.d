/root/repo/target/debug/deps/fun3d_sparse-0fdae381ace5595a.d: crates/sparse/src/lib.rs crates/sparse/src/bcsr.rs crates/sparse/src/block_ilu.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ilu.rs crates/sparse/src/layout.rs crates/sparse/src/triplet.rs crates/sparse/src/vec_ops.rs Cargo.toml

/root/repo/target/debug/deps/libfun3d_sparse-0fdae381ace5595a.rmeta: crates/sparse/src/lib.rs crates/sparse/src/bcsr.rs crates/sparse/src/block_ilu.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ilu.rs crates/sparse/src/layout.rs crates/sparse/src/triplet.rs crates/sparse/src/vec_ops.rs Cargo.toml

crates/sparse/src/lib.rs:
crates/sparse/src/bcsr.rs:
crates/sparse/src/block_ilu.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/ilu.rs:
crates/sparse/src/layout.rs:
crates/sparse/src/triplet.rs:
crates/sparse/src/vec_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
