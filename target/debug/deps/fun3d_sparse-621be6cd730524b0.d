/root/repo/target/debug/deps/fun3d_sparse-621be6cd730524b0.d: crates/sparse/src/lib.rs crates/sparse/src/bcsr.rs crates/sparse/src/block_ilu.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ilu.rs crates/sparse/src/layout.rs crates/sparse/src/triplet.rs crates/sparse/src/vec_ops.rs

/root/repo/target/debug/deps/fun3d_sparse-621be6cd730524b0: crates/sparse/src/lib.rs crates/sparse/src/bcsr.rs crates/sparse/src/block_ilu.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ilu.rs crates/sparse/src/layout.rs crates/sparse/src/triplet.rs crates/sparse/src/vec_ops.rs

crates/sparse/src/lib.rs:
crates/sparse/src/bcsr.rs:
crates/sparse/src/block_ilu.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/ilu.rs:
crates/sparse/src/layout.rs:
crates/sparse/src/triplet.rs:
crates/sparse/src/vec_ops.rs:
