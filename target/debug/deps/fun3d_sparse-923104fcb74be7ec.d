/root/repo/target/debug/deps/fun3d_sparse-923104fcb74be7ec.d: crates/sparse/src/lib.rs crates/sparse/src/bcsr.rs crates/sparse/src/block_ilu.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ilu.rs crates/sparse/src/layout.rs crates/sparse/src/triplet.rs crates/sparse/src/vec_ops.rs

/root/repo/target/debug/deps/libfun3d_sparse-923104fcb74be7ec.rlib: crates/sparse/src/lib.rs crates/sparse/src/bcsr.rs crates/sparse/src/block_ilu.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ilu.rs crates/sparse/src/layout.rs crates/sparse/src/triplet.rs crates/sparse/src/vec_ops.rs

/root/repo/target/debug/deps/libfun3d_sparse-923104fcb74be7ec.rmeta: crates/sparse/src/lib.rs crates/sparse/src/bcsr.rs crates/sparse/src/block_ilu.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ilu.rs crates/sparse/src/layout.rs crates/sparse/src/triplet.rs crates/sparse/src/vec_ops.rs

crates/sparse/src/lib.rs:
crates/sparse/src/bcsr.rs:
crates/sparse/src/block_ilu.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/ilu.rs:
crates/sparse/src/layout.rs:
crates/sparse/src/triplet.rs:
crates/sparse/src/vec_ops.rs:
