/root/repo/target/debug/deps/fun3d_telemetry-041a59ed70a29e29.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libfun3d_telemetry-041a59ed70a29e29.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
