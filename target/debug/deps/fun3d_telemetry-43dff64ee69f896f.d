/root/repo/target/debug/deps/fun3d_telemetry-43dff64ee69f896f.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs

/root/repo/target/debug/deps/libfun3d_telemetry-43dff64ee69f896f.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs

/root/repo/target/debug/deps/libfun3d_telemetry-43dff64ee69f896f.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/report.rs:
