/root/repo/target/debug/deps/fun3d_telemetry-d1dc7f38b9fd048e.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs

/root/repo/target/debug/deps/fun3d_telemetry-d1dc7f38b9fd048e: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/report.rs:
