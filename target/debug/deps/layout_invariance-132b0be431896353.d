/root/repo/target/debug/deps/layout_invariance-132b0be431896353.d: tests/layout_invariance.rs Cargo.toml

/root/repo/target/debug/deps/liblayout_invariance-132b0be431896353.rmeta: tests/layout_invariance.rs Cargo.toml

tests/layout_invariance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
