/root/repo/target/debug/deps/layout_invariance-d648ab9d890fc0e3.d: tests/layout_invariance.rs

/root/repo/target/debug/deps/layout_invariance-d648ab9d890fc0e3: tests/layout_invariance.rs

tests/layout_invariance.rs:
