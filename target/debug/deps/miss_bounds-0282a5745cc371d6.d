/root/repo/target/debug/deps/miss_bounds-0282a5745cc371d6.d: crates/bench/src/bin/miss_bounds.rs Cargo.toml

/root/repo/target/debug/deps/libmiss_bounds-0282a5745cc371d6.rmeta: crates/bench/src/bin/miss_bounds.rs Cargo.toml

crates/bench/src/bin/miss_bounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
