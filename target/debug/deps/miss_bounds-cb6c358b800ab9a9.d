/root/repo/target/debug/deps/miss_bounds-cb6c358b800ab9a9.d: crates/bench/src/bin/miss_bounds.rs

/root/repo/target/debug/deps/miss_bounds-cb6c358b800ab9a9: crates/bench/src/bin/miss_bounds.rs

crates/bench/src/bin/miss_bounds.rs:
