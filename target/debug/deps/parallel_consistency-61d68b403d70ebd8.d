/root/repo/target/debug/deps/parallel_consistency-61d68b403d70ebd8.d: tests/parallel_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_consistency-61d68b403d70ebd8.rmeta: tests/parallel_consistency.rs Cargo.toml

tests/parallel_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
