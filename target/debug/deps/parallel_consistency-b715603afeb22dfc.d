/root/repo/target/debug/deps/parallel_consistency-b715603afeb22dfc.d: tests/parallel_consistency.rs

/root/repo/target/debug/deps/parallel_consistency-b715603afeb22dfc: tests/parallel_consistency.rs

tests/parallel_consistency.rs:
