/root/repo/target/debug/deps/parallel_nks-64405e38c664c9a3.d: crates/bench/src/bin/parallel_nks.rs

/root/repo/target/debug/deps/parallel_nks-64405e38c664c9a3: crates/bench/src/bin/parallel_nks.rs

crates/bench/src/bin/parallel_nks.rs:
