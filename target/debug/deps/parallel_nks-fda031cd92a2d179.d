/root/repo/target/debug/deps/parallel_nks-fda031cd92a2d179.d: crates/bench/src/bin/parallel_nks.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_nks-fda031cd92a2d179.rmeta: crates/bench/src/bin/parallel_nks.rs Cargo.toml

crates/bench/src/bin/parallel_nks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
