/root/repo/target/debug/deps/partition-89f41f93df8062f8.d: crates/bench/benches/partition.rs Cargo.toml

/root/repo/target/debug/deps/libpartition-89f41f93df8062f8.rmeta: crates/bench/benches/partition.rs Cargo.toml

crates/bench/benches/partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
