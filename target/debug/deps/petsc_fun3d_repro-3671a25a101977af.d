/root/repo/target/debug/deps/petsc_fun3d_repro-3671a25a101977af.d: src/lib.rs

/root/repo/target/debug/deps/petsc_fun3d_repro-3671a25a101977af: src/lib.rs

src/lib.rs:
