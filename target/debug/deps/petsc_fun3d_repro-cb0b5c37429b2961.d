/root/repo/target/debug/deps/petsc_fun3d_repro-cb0b5c37429b2961.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpetsc_fun3d_repro-cb0b5c37429b2961.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
