/root/repo/target/debug/deps/petsc_fun3d_repro-d68ae3179d2df4a8.d: src/lib.rs

/root/repo/target/debug/deps/libpetsc_fun3d_repro-d68ae3179d2df4a8.rlib: src/lib.rs

/root/repo/target/debug/deps/libpetsc_fun3d_repro-d68ae3179d2df4a8.rmeta: src/lib.rs

src/lib.rs:
