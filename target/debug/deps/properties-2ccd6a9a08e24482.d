/root/repo/target/debug/deps/properties-2ccd6a9a08e24482.d: crates/comm/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2ccd6a9a08e24482.rmeta: crates/comm/tests/properties.rs Cargo.toml

crates/comm/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
