/root/repo/target/debug/deps/properties-74f08960c7358178.d: crates/euler/tests/properties.rs

/root/repo/target/debug/deps/properties-74f08960c7358178: crates/euler/tests/properties.rs

crates/euler/tests/properties.rs:
