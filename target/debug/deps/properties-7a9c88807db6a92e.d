/root/repo/target/debug/deps/properties-7a9c88807db6a92e.d: crates/solver/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-7a9c88807db6a92e.rmeta: crates/solver/tests/properties.rs Cargo.toml

crates/solver/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
