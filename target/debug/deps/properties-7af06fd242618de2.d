/root/repo/target/debug/deps/properties-7af06fd242618de2.d: crates/comm/tests/properties.rs

/root/repo/target/debug/deps/properties-7af06fd242618de2: crates/comm/tests/properties.rs

crates/comm/tests/properties.rs:
