/root/repo/target/debug/deps/properties-8504b13087771882.d: crates/sparse/tests/properties.rs

/root/repo/target/debug/deps/properties-8504b13087771882: crates/sparse/tests/properties.rs

crates/sparse/tests/properties.rs:
