/root/repo/target/debug/deps/properties-85825af51c7d2f75.d: crates/sparse/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-85825af51c7d2f75.rmeta: crates/sparse/tests/properties.rs Cargo.toml

crates/sparse/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
