/root/repo/target/debug/deps/properties-a779625309b41dc8.d: crates/telemetry/tests/properties.rs

/root/repo/target/debug/deps/properties-a779625309b41dc8: crates/telemetry/tests/properties.rs

crates/telemetry/tests/properties.rs:
