/root/repo/target/debug/deps/properties-b3aaff8e3fe2b6c3.d: crates/mesh/tests/properties.rs

/root/repo/target/debug/deps/properties-b3aaff8e3fe2b6c3: crates/mesh/tests/properties.rs

crates/mesh/tests/properties.rs:
