/root/repo/target/debug/deps/properties-b85bdd1d27215bcc.d: crates/telemetry/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b85bdd1d27215bcc.rmeta: crates/telemetry/tests/properties.rs Cargo.toml

crates/telemetry/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
