/root/repo/target/debug/deps/properties-cb2171ca8e27dd9b.d: crates/solver/tests/properties.rs

/root/repo/target/debug/deps/properties-cb2171ca8e27dd9b: crates/solver/tests/properties.rs

crates/solver/tests/properties.rs:
