/root/repo/target/debug/deps/properties-e30f57b7fbbc4608.d: crates/mesh/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-e30f57b7fbbc4608.rmeta: crates/mesh/tests/properties.rs Cargo.toml

crates/mesh/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
