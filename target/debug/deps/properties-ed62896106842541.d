/root/repo/target/debug/deps/properties-ed62896106842541.d: crates/euler/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ed62896106842541.rmeta: crates/euler/tests/properties.rs Cargo.toml

crates/euler/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
