/root/repo/target/debug/deps/proptest-07cab5d3e739b8dc.d: crates/proptest-compat/src/lib.rs

/root/repo/target/debug/deps/proptest-07cab5d3e739b8dc: crates/proptest-compat/src/lib.rs

crates/proptest-compat/src/lib.rs:
