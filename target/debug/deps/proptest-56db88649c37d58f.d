/root/repo/target/debug/deps/proptest-56db88649c37d58f.d: crates/proptest-compat/src/lib.rs

/root/repo/target/debug/deps/libproptest-56db88649c37d58f.rlib: crates/proptest-compat/src/lib.rs

/root/repo/target/debug/deps/libproptest-56db88649c37d58f.rmeta: crates/proptest-compat/src/lib.rs

crates/proptest-compat/src/lib.rs:
