/root/repo/target/debug/deps/proptest-ad0813654143766b.d: crates/proptest-compat/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-ad0813654143766b.rmeta: crates/proptest-compat/src/lib.rs Cargo.toml

crates/proptest-compat/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
