/root/repo/target/debug/deps/proptest-b2bf3a52201642e9.d: crates/proptest-compat/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-b2bf3a52201642e9.rmeta: crates/proptest-compat/src/lib.rs Cargo.toml

crates/proptest-compat/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
