/root/repo/target/debug/deps/rand-032ec7f79da014ff.d: crates/rand-compat/src/lib.rs

/root/repo/target/debug/deps/librand-032ec7f79da014ff.rlib: crates/rand-compat/src/lib.rs

/root/repo/target/debug/deps/librand-032ec7f79da014ff.rmeta: crates/rand-compat/src/lib.rs

crates/rand-compat/src/lib.rs:
