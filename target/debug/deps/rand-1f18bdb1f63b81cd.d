/root/repo/target/debug/deps/rand-1f18bdb1f63b81cd.d: crates/rand-compat/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-1f18bdb1f63b81cd.rmeta: crates/rand-compat/src/lib.rs Cargo.toml

crates/rand-compat/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
