/root/repo/target/debug/deps/rand-950212428255939d.d: crates/rand-compat/src/lib.rs

/root/repo/target/debug/deps/rand-950212428255939d: crates/rand-compat/src/lib.rs

crates/rand-compat/src/lib.rs:
