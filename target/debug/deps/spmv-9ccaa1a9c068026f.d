/root/repo/target/debug/deps/spmv-9ccaa1a9c068026f.d: crates/bench/benches/spmv.rs Cargo.toml

/root/repo/target/debug/deps/libspmv-9ccaa1a9c068026f.rmeta: crates/bench/benches/spmv.rs Cargo.toml

crates/bench/benches/spmv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
