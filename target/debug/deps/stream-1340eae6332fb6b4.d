/root/repo/target/debug/deps/stream-1340eae6332fb6b4.d: crates/bench/src/bin/stream.rs Cargo.toml

/root/repo/target/debug/deps/libstream-1340eae6332fb6b4.rmeta: crates/bench/src/bin/stream.rs Cargo.toml

crates/bench/src/bin/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
