/root/repo/target/debug/deps/stream-79e130daf08235d5.d: crates/bench/src/bin/stream.rs Cargo.toml

/root/repo/target/debug/deps/libstream-79e130daf08235d5.rmeta: crates/bench/src/bin/stream.rs Cargo.toml

crates/bench/src/bin/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
