/root/repo/target/debug/deps/stream-b0d1a7f5bdd40866.d: crates/bench/src/bin/stream.rs

/root/repo/target/debug/deps/stream-b0d1a7f5bdd40866: crates/bench/src/bin/stream.rs

crates/bench/src/bin/stream.rs:
