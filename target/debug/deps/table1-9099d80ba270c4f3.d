/root/repo/target/debug/deps/table1-9099d80ba270c4f3.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-9099d80ba270c4f3.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
