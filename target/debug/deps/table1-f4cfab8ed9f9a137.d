/root/repo/target/debug/deps/table1-f4cfab8ed9f9a137.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-f4cfab8ed9f9a137: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
