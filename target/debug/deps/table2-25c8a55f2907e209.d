/root/repo/target/debug/deps/table2-25c8a55f2907e209.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-25c8a55f2907e209.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
