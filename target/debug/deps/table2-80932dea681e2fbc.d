/root/repo/target/debug/deps/table2-80932dea681e2fbc.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-80932dea681e2fbc.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
