/root/repo/target/debug/deps/table2-b004bf09d5c5880c.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-b004bf09d5c5880c: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
