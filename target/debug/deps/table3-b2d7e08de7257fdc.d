/root/repo/target/debug/deps/table3-b2d7e08de7257fdc.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-b2d7e08de7257fdc.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
