/root/repo/target/debug/deps/table3-c4181984f984776b.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-c4181984f984776b: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
