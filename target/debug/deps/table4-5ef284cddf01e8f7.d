/root/repo/target/debug/deps/table4-5ef284cddf01e8f7.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-5ef284cddf01e8f7: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
