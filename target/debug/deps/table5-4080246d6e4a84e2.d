/root/repo/target/debug/deps/table5-4080246d6e4a84e2.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-4080246d6e4a84e2.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
