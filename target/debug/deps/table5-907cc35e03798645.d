/root/repo/target/debug/deps/table5-907cc35e03798645.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-907cc35e03798645.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
