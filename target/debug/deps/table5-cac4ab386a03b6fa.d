/root/repo/target/debug/deps/table5-cac4ab386a03b6fa.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-cac4ab386a03b6fa: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
