/root/repo/target/debug/deps/telemetry-8b26404c6082ee2b.d: tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-8b26404c6082ee2b: tests/telemetry.rs

tests/telemetry.rs:
