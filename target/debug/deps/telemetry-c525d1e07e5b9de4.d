/root/repo/target/debug/deps/telemetry-c525d1e07e5b9de4.d: tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-c525d1e07e5b9de4.rmeta: tests/telemetry.rs Cargo.toml

tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
