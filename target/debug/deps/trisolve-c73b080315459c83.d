/root/repo/target/debug/deps/trisolve-c73b080315459c83.d: crates/bench/benches/trisolve.rs Cargo.toml

/root/repo/target/debug/deps/libtrisolve-c73b080315459c83.rmeta: crates/bench/benches/trisolve.rs Cargo.toml

crates/bench/benches/trisolve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
