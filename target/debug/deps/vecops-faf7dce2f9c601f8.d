/root/repo/target/debug/deps/vecops-faf7dce2f9c601f8.d: crates/bench/benches/vecops.rs Cargo.toml

/root/repo/target/debug/deps/libvecops-faf7dce2f9c601f8.rmeta: crates/bench/benches/vecops.rs Cargo.toml

crates/bench/benches/vecops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
