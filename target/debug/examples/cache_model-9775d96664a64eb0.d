/root/repo/target/debug/examples/cache_model-9775d96664a64eb0.d: examples/cache_model.rs Cargo.toml

/root/repo/target/debug/examples/libcache_model-9775d96664a64eb0.rmeta: examples/cache_model.rs Cargo.toml

examples/cache_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
