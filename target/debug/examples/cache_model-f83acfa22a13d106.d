/root/repo/target/debug/examples/cache_model-f83acfa22a13d106.d: examples/cache_model.rs

/root/repo/target/debug/examples/cache_model-f83acfa22a13d106: examples/cache_model.rs

examples/cache_model.rs:
