/root/repo/target/debug/examples/layout_tuning-759f1e36a17a1f51.d: examples/layout_tuning.rs

/root/repo/target/debug/examples/layout_tuning-759f1e36a17a1f51: examples/layout_tuning.rs

examples/layout_tuning.rs:
