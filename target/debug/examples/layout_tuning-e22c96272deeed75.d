/root/repo/target/debug/examples/layout_tuning-e22c96272deeed75.d: examples/layout_tuning.rs Cargo.toml

/root/repo/target/debug/examples/liblayout_tuning-e22c96272deeed75.rmeta: examples/layout_tuning.rs Cargo.toml

examples/layout_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
