/root/repo/target/debug/examples/parallel_scaling-32f00f7382041182.d: examples/parallel_scaling.rs

/root/repo/target/debug/examples/parallel_scaling-32f00f7382041182: examples/parallel_scaling.rs

examples/parallel_scaling.rs:
