/root/repo/target/debug/examples/parallel_scaling-e5eb860ccb7ac4f7.d: examples/parallel_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libparallel_scaling-e5eb860ccb7ac4f7.rmeta: examples/parallel_scaling.rs Cargo.toml

examples/parallel_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
