/root/repo/target/debug/examples/quickstart-4d9e4816649bc762.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4d9e4816649bc762: examples/quickstart.rs

examples/quickstart.rs:
