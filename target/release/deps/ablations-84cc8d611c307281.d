/root/repo/target/release/deps/ablations-84cc8d611c307281.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-84cc8d611c307281: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
