/root/repo/target/release/deps/criterion-68862c7791c49c50.d: crates/criterion-compat/src/lib.rs

/root/repo/target/release/deps/libcriterion-68862c7791c49c50.rlib: crates/criterion-compat/src/lib.rs

/root/repo/target/release/deps/libcriterion-68862c7791c49c50.rmeta: crates/criterion-compat/src/lib.rs

crates/criterion-compat/src/lib.rs:
