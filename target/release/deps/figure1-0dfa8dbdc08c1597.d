/root/repo/target/release/deps/figure1-0dfa8dbdc08c1597.d: crates/bench/src/bin/figure1.rs

/root/repo/target/release/deps/figure1-0dfa8dbdc08c1597: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:
