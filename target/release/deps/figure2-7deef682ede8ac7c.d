/root/repo/target/release/deps/figure2-7deef682ede8ac7c.d: crates/bench/src/bin/figure2.rs

/root/repo/target/release/deps/figure2-7deef682ede8ac7c: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
