/root/repo/target/release/deps/figure3-d1450fb7dba7852a.d: crates/bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-d1450fb7dba7852a: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
