/root/repo/target/release/deps/figure4-af03797a5ea551b4.d: crates/bench/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-af03797a5ea551b4: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
