/root/repo/target/release/deps/figure5-8760a76f428c0736.d: crates/bench/src/bin/figure5.rs

/root/repo/target/release/deps/figure5-8760a76f428c0736: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:
