/root/repo/target/release/deps/fun3d-c3ed693add072f35.d: crates/core/src/bin/fun3d.rs

/root/repo/target/release/deps/fun3d-c3ed693add072f35: crates/core/src/bin/fun3d.rs

crates/core/src/bin/fun3d.rs:
