/root/repo/target/release/deps/fun3d_bench-410845a4ff07751c.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfun3d_bench-410845a4ff07751c.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfun3d_bench-410845a4ff07751c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
