/root/repo/target/release/deps/fun3d_comm-53c1580c2951f530.d: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/scatter.rs crates/comm/src/smp.rs crates/comm/src/world.rs

/root/repo/target/release/deps/libfun3d_comm-53c1580c2951f530.rlib: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/scatter.rs crates/comm/src/smp.rs crates/comm/src/world.rs

/root/repo/target/release/deps/libfun3d_comm-53c1580c2951f530.rmeta: crates/comm/src/lib.rs crates/comm/src/clock.rs crates/comm/src/scatter.rs crates/comm/src/smp.rs crates/comm/src/world.rs

crates/comm/src/lib.rs:
crates/comm/src/clock.rs:
crates/comm/src/scatter.rs:
crates/comm/src/smp.rs:
crates/comm/src/world.rs:
