/root/repo/target/release/deps/fun3d_euler-c7012135f55023cc.d: crates/euler/src/lib.rs crates/euler/src/field.rs crates/euler/src/gradient.rs crates/euler/src/model.rs crates/euler/src/residual.rs

/root/repo/target/release/deps/libfun3d_euler-c7012135f55023cc.rlib: crates/euler/src/lib.rs crates/euler/src/field.rs crates/euler/src/gradient.rs crates/euler/src/model.rs crates/euler/src/residual.rs

/root/repo/target/release/deps/libfun3d_euler-c7012135f55023cc.rmeta: crates/euler/src/lib.rs crates/euler/src/field.rs crates/euler/src/gradient.rs crates/euler/src/model.rs crates/euler/src/residual.rs

crates/euler/src/lib.rs:
crates/euler/src/field.rs:
crates/euler/src/gradient.rs:
crates/euler/src/model.rs:
crates/euler/src/residual.rs:
