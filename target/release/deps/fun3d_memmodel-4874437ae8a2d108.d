/root/repo/target/release/deps/fun3d_memmodel-4874437ae8a2d108.d: crates/memmodel/src/lib.rs crates/memmodel/src/bounds.rs crates/memmodel/src/cache.rs crates/memmodel/src/hierarchy.rs crates/memmodel/src/machine.rs crates/memmodel/src/sched.rs crates/memmodel/src/spmv_model.rs crates/memmodel/src/stream.rs crates/memmodel/src/trace.rs

/root/repo/target/release/deps/libfun3d_memmodel-4874437ae8a2d108.rlib: crates/memmodel/src/lib.rs crates/memmodel/src/bounds.rs crates/memmodel/src/cache.rs crates/memmodel/src/hierarchy.rs crates/memmodel/src/machine.rs crates/memmodel/src/sched.rs crates/memmodel/src/spmv_model.rs crates/memmodel/src/stream.rs crates/memmodel/src/trace.rs

/root/repo/target/release/deps/libfun3d_memmodel-4874437ae8a2d108.rmeta: crates/memmodel/src/lib.rs crates/memmodel/src/bounds.rs crates/memmodel/src/cache.rs crates/memmodel/src/hierarchy.rs crates/memmodel/src/machine.rs crates/memmodel/src/sched.rs crates/memmodel/src/spmv_model.rs crates/memmodel/src/stream.rs crates/memmodel/src/trace.rs

crates/memmodel/src/lib.rs:
crates/memmodel/src/bounds.rs:
crates/memmodel/src/cache.rs:
crates/memmodel/src/hierarchy.rs:
crates/memmodel/src/machine.rs:
crates/memmodel/src/sched.rs:
crates/memmodel/src/spmv_model.rs:
crates/memmodel/src/stream.rs:
crates/memmodel/src/trace.rs:
