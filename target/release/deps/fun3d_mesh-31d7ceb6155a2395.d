/root/repo/target/release/deps/fun3d_mesh-31d7ceb6155a2395.d: crates/mesh/src/lib.rs crates/mesh/src/generator.rs crates/mesh/src/graph.rs crates/mesh/src/metrics.rs crates/mesh/src/reorder.rs crates/mesh/src/tet.rs

/root/repo/target/release/deps/libfun3d_mesh-31d7ceb6155a2395.rlib: crates/mesh/src/lib.rs crates/mesh/src/generator.rs crates/mesh/src/graph.rs crates/mesh/src/metrics.rs crates/mesh/src/reorder.rs crates/mesh/src/tet.rs

/root/repo/target/release/deps/libfun3d_mesh-31d7ceb6155a2395.rmeta: crates/mesh/src/lib.rs crates/mesh/src/generator.rs crates/mesh/src/graph.rs crates/mesh/src/metrics.rs crates/mesh/src/reorder.rs crates/mesh/src/tet.rs

crates/mesh/src/lib.rs:
crates/mesh/src/generator.rs:
crates/mesh/src/graph.rs:
crates/mesh/src/metrics.rs:
crates/mesh/src/reorder.rs:
crates/mesh/src/tet.rs:
