/root/repo/target/release/deps/fun3d_partition-9b5b28c247a89334.d: crates/partition/src/lib.rs crates/partition/src/overlap.rs crates/partition/src/refine.rs

/root/repo/target/release/deps/libfun3d_partition-9b5b28c247a89334.rlib: crates/partition/src/lib.rs crates/partition/src/overlap.rs crates/partition/src/refine.rs

/root/repo/target/release/deps/libfun3d_partition-9b5b28c247a89334.rmeta: crates/partition/src/lib.rs crates/partition/src/overlap.rs crates/partition/src/refine.rs

crates/partition/src/lib.rs:
crates/partition/src/overlap.rs:
crates/partition/src/refine.rs:
