/root/repo/target/release/deps/fun3d_solver-ba0de5957ad6a9e5.d: crates/solver/src/lib.rs crates/solver/src/gmres.rs crates/solver/src/op.rs crates/solver/src/precond.rs crates/solver/src/pseudo.rs

/root/repo/target/release/deps/libfun3d_solver-ba0de5957ad6a9e5.rlib: crates/solver/src/lib.rs crates/solver/src/gmres.rs crates/solver/src/op.rs crates/solver/src/precond.rs crates/solver/src/pseudo.rs

/root/repo/target/release/deps/libfun3d_solver-ba0de5957ad6a9e5.rmeta: crates/solver/src/lib.rs crates/solver/src/gmres.rs crates/solver/src/op.rs crates/solver/src/precond.rs crates/solver/src/pseudo.rs

crates/solver/src/lib.rs:
crates/solver/src/gmres.rs:
crates/solver/src/op.rs:
crates/solver/src/precond.rs:
crates/solver/src/pseudo.rs:
