/root/repo/target/release/deps/fun3d_sparse-657fb5e17e66a662.d: crates/sparse/src/lib.rs crates/sparse/src/bcsr.rs crates/sparse/src/block_ilu.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ilu.rs crates/sparse/src/layout.rs crates/sparse/src/triplet.rs crates/sparse/src/vec_ops.rs

/root/repo/target/release/deps/libfun3d_sparse-657fb5e17e66a662.rlib: crates/sparse/src/lib.rs crates/sparse/src/bcsr.rs crates/sparse/src/block_ilu.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ilu.rs crates/sparse/src/layout.rs crates/sparse/src/triplet.rs crates/sparse/src/vec_ops.rs

/root/repo/target/release/deps/libfun3d_sparse-657fb5e17e66a662.rmeta: crates/sparse/src/lib.rs crates/sparse/src/bcsr.rs crates/sparse/src/block_ilu.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/ilu.rs crates/sparse/src/layout.rs crates/sparse/src/triplet.rs crates/sparse/src/vec_ops.rs

crates/sparse/src/lib.rs:
crates/sparse/src/bcsr.rs:
crates/sparse/src/block_ilu.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/ilu.rs:
crates/sparse/src/layout.rs:
crates/sparse/src/triplet.rs:
crates/sparse/src/vec_ops.rs:
