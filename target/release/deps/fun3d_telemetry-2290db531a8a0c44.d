/root/repo/target/release/deps/fun3d_telemetry-2290db531a8a0c44.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs

/root/repo/target/release/deps/libfun3d_telemetry-2290db531a8a0c44.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs

/root/repo/target/release/deps/libfun3d_telemetry-2290db531a8a0c44.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/report.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/report.rs:
