/root/repo/target/release/deps/miss_bounds-f454f40f7517ddd4.d: crates/bench/src/bin/miss_bounds.rs

/root/repo/target/release/deps/miss_bounds-f454f40f7517ddd4: crates/bench/src/bin/miss_bounds.rs

crates/bench/src/bin/miss_bounds.rs:
