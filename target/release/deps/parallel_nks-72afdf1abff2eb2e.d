/root/repo/target/release/deps/parallel_nks-72afdf1abff2eb2e.d: crates/bench/src/bin/parallel_nks.rs

/root/repo/target/release/deps/parallel_nks-72afdf1abff2eb2e: crates/bench/src/bin/parallel_nks.rs

crates/bench/src/bin/parallel_nks.rs:
