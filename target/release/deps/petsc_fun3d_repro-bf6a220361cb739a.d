/root/repo/target/release/deps/petsc_fun3d_repro-bf6a220361cb739a.d: src/lib.rs

/root/repo/target/release/deps/libpetsc_fun3d_repro-bf6a220361cb739a.rlib: src/lib.rs

/root/repo/target/release/deps/libpetsc_fun3d_repro-bf6a220361cb739a.rmeta: src/lib.rs

src/lib.rs:
