/root/repo/target/release/deps/proptest-7875952800f8cbb7.d: crates/proptest-compat/src/lib.rs

/root/repo/target/release/deps/libproptest-7875952800f8cbb7.rlib: crates/proptest-compat/src/lib.rs

/root/repo/target/release/deps/libproptest-7875952800f8cbb7.rmeta: crates/proptest-compat/src/lib.rs

crates/proptest-compat/src/lib.rs:
