/root/repo/target/release/deps/rand-46dd06a02eedea24.d: crates/rand-compat/src/lib.rs

/root/repo/target/release/deps/librand-46dd06a02eedea24.rlib: crates/rand-compat/src/lib.rs

/root/repo/target/release/deps/librand-46dd06a02eedea24.rmeta: crates/rand-compat/src/lib.rs

crates/rand-compat/src/lib.rs:
