/root/repo/target/release/deps/stream-d41a221ce9cda9cd.d: crates/bench/src/bin/stream.rs

/root/repo/target/release/deps/stream-d41a221ce9cda9cd: crates/bench/src/bin/stream.rs

crates/bench/src/bin/stream.rs:
