/root/repo/target/release/deps/table1-a37c98d9bc7855e6.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-a37c98d9bc7855e6: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
