/root/repo/target/release/deps/table2-d3d583004a5691e8.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-d3d583004a5691e8: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
