/root/repo/target/release/deps/table3-487fc092aa88d57a.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-487fc092aa88d57a: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
