/root/repo/target/release/deps/table4-4c413b629314958a.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-4c413b629314958a: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
