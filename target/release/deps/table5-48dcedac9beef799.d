/root/repo/target/release/deps/table5-48dcedac9beef799.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-48dcedac9beef799: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
