/root/repo/target/release/libcriterion.rlib: /root/repo/crates/criterion-compat/src/lib.rs
