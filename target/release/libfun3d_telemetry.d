/root/repo/target/release/libfun3d_telemetry.rlib: /root/repo/crates/telemetry/src/json.rs /root/repo/crates/telemetry/src/lib.rs /root/repo/crates/telemetry/src/report.rs
