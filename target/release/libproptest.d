/root/repo/target/release/libproptest.rlib: /root/repo/crates/proptest-compat/src/lib.rs /root/repo/crates/rand-compat/src/lib.rs
