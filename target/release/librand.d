/root/repo/target/release/librand.rlib: /root/repo/crates/rand-compat/src/lib.rs
