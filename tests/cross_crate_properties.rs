//! Cross-crate property tests: invariants that hold across module
//! boundaries, exercised with randomized inputs.

use petsc_fun3d_repro::core::config::apply_orderings;
use petsc_fun3d_repro::core::efficiency::{efficiency_table, ScalingPoint};
use petsc_fun3d_repro::euler::field::FieldVec;
use petsc_fun3d_repro::euler::model::FlowModel;
use petsc_fun3d_repro::euler::residual::{Discretization, SpatialOrder};
use petsc_fun3d_repro::mesh::generator::BumpChannelSpec;
use petsc_fun3d_repro::mesh::reorder::{EdgeOrdering, VertexOrdering};
use petsc_fun3d_repro::partition::{partition_fragmented, partition_kway, partition_pway};
use petsc_fun3d_repro::sparse::layout::FieldLayout;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any vertex/edge ordering leaves mesh geometry intact.
    #[test]
    fn orderings_preserve_geometry(seed in 0u64..1000) {
        let base = BumpChannelSpec::with_dims(6, 5, 4).build();
        let mesh = apply_orderings(
            base.clone(),
            VertexOrdering::Random(seed),
            EdgeOrdering::Random(seed.wrapping_add(1)),
        );
        prop_assert!((mesh.total_volume() - base.total_volume()).abs() < 1e-10);
        prop_assert!(mesh.closure_residual() < 1e-10);
        prop_assert_eq!(mesh.nedges(), base.nedges());
        prop_assert_eq!(mesh.boundary_faces().len(), base.boundary_faces().len());
    }

    /// Every partitioner covers all vertices with nonempty parts.
    #[test]
    fn partitioners_cover(k in 2usize..12, seed in 0u64..100) {
        let g = BumpChannelSpec::with_dims(8, 6, 5).build().vertex_graph();
        for part in [
            partition_kway(&g, k, seed),
            partition_pway(&g, k, seed),
            partition_fragmented(&g, k, 2, seed),
        ] {
            prop_assert_eq!(part.part.len(), g.n());
            let sizes = part.sizes();
            prop_assert!(sizes.iter().all(|&s| s > 0), "{:?}", sizes);
            prop_assert_eq!(sizes.iter().sum::<usize>(), g.n());
        }
    }

    /// The residual is layout- and ordering-invariant for arbitrary smooth
    /// states (not just freestream).
    #[test]
    fn residual_invariant_under_layout(amp in 0.0f64..0.05) {
        let mesh = BumpChannelSpec::with_dims(6, 5, 4).build();
        let model = FlowModel::incompressible();
        let di = Discretization::new(&mesh, model, FieldLayout::Interlaced, SpatialOrder::First);
        let ds = Discretization::new(&mesh, model, FieldLayout::Segregated, SpatialOrder::First);
        let mut qi = di.initial_state();
        for v in 0..mesh.nverts() {
            let mut s = qi.get(v);
            let x = mesh.coords()[v];
            for (c, sc) in s.iter_mut().take(4).enumerate() {
                *sc += amp * ((c + 1) as f64) * (x[0] + x[1] - x[2]).sin();
            }
            qi.set(v, &s);
        }
        let qs = qi.to_layout(FieldLayout::Segregated);
        let mut ri = FieldVec::zeros(mesh.nverts(), 4, FieldLayout::Interlaced);
        let mut rs = FieldVec::zeros(mesh.nverts(), 4, FieldLayout::Segregated);
        let mut wi = di.workspace();
        let mut wsx = ds.workspace();
        di.residual(&qi, &mut ri, &mut wi);
        ds.residual(&qs, &mut rs, &mut wsx);
        for v in 0..mesh.nverts() {
            let a = ri.get(v);
            let b = rs.get(v);
            for c in 0..4 {
                prop_assert!((a[c] - b[c]).abs() < 1e-11, "v={} c={}", v, c);
            }
        }
    }

    /// eta_overall = eta_alg * eta_impl identically, for any positive series.
    #[test]
    fn efficiency_identity(times in proptest::collection::vec(1.0f64..100.0, 2..6)) {
        let points: Vec<ScalingPoint> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| ScalingPoint {
                nprocs: 16 << i,
                its: 20 + i,
                time: t,
            })
            .collect();
        for row in efficiency_table(&points) {
            prop_assert!((row.eta_overall - row.eta_alg * row.eta_impl).abs() < 1e-12);
        }
    }

    /// Fragmented partitions never have fewer fragments than parts, and
    /// plain k-way on a connected mesh has exactly one per part.
    #[test]
    fn fragmentation_ordering(k in 2usize..8) {
        let g = BumpChannelSpec::with_dims(8, 6, 5).build().vertex_graph();
        let qk = partition_kway(&g, k, 1).quality(&g);
        let qf = partition_fragmented(&g, k, 2, 1).quality(&g);
        prop_assert_eq!(qk.total_fragments, k);
        prop_assert!(qf.total_fragments >= qk.total_fragments);
    }
}
