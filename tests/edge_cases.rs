//! Edge-case and robustness tests across the stack: degenerate sizes,
//! trivial inputs, and boundary parameter values.

use petsc_fun3d_repro::comm::world::run_world;
use petsc_fun3d_repro::memmodel::machine::MachineSpec;
use petsc_fun3d_repro::mesh::generator::BumpChannelSpec;
use petsc_fun3d_repro::partition::{partition_kway, partition_pway};
use petsc_fun3d_repro::solver::gmres::{gmres, GmresOptions};
use petsc_fun3d_repro::solver::op::CsrOperator;
use petsc_fun3d_repro::solver::precond::{IdentityPrecond, IluPrecond};
use petsc_fun3d_repro::sparse::csr::CsrMatrix;
use petsc_fun3d_repro::sparse::ilu::{IluFactors, IluOptions};
use petsc_fun3d_repro::sparse::triplet::TripletMatrix;

#[test]
fn gmres_with_zero_rhs_returns_zero_in_zero_iterations() {
    let a = CsrMatrix::identity(10);
    let b = vec![0.0; 10];
    let mut x = vec![0.0; 10];
    let r = gmres(
        &CsrOperator::new(&a),
        &IdentityPrecond,
        &b,
        &mut x,
        &GmresOptions::default(),
    );
    assert!(r.converged);
    assert_eq!(r.iterations, 0);
    assert!(x.iter().all(|&v| v == 0.0));
}

#[test]
fn gmres_on_1x1_system() {
    let mut t = TripletMatrix::new(1, 1);
    t.push(0, 0, 4.0);
    let a = t.to_csr();
    let mut x = vec![0.0];
    let r = gmres(
        &CsrOperator::new(&a),
        &IdentityPrecond,
        &[8.0],
        &mut x,
        &GmresOptions {
            rtol: 1e-12,
            ..Default::default()
        },
    );
    assert!(r.converged);
    assert!((x[0] - 2.0).abs() < 1e-10);
}

#[test]
fn ilu_of_identity_is_identity() {
    let a = CsrMatrix::identity(25);
    let f = IluFactors::factor(&a, &IluOptions::with_fill(2)).unwrap();
    let b: Vec<f64> = (0..25).map(|i| i as f64).collect();
    let mut x = vec![0.0; 25];
    f.solve(&b, &mut x);
    assert_eq!(x, b);
    assert_eq!(f.nnz(), 25);
}

#[test]
fn ilu_precond_on_diagonal_matrix_converges_in_one_iteration() {
    let mut t = TripletMatrix::new(12, 12);
    for i in 0..12 {
        t.push(i, i, (i + 1) as f64);
    }
    let a = t.to_csr();
    let pc = IluPrecond::factor(&a, &IluOptions::with_fill(0)).unwrap();
    let b = vec![3.0; 12];
    let mut x = vec![0.0; 12];
    let r = gmres(
        &CsrOperator::new(&a),
        &pc,
        &b,
        &mut x,
        &GmresOptions {
            rtol: 1e-12,
            ..Default::default()
        },
    );
    assert!(r.converged);
    assert!(r.iterations <= 1, "exact preconditioner: {r:?}");
}

#[test]
fn minimal_mesh_dimensions_work() {
    let m = BumpChannelSpec::with_dims(2, 2, 2).build();
    assert_eq!(m.nverts(), 8);
    assert_eq!(m.ntets(), 6);
    assert!(m.closure_residual() < 1e-12);
}

#[test]
fn partition_into_singletons() {
    let g = BumpChannelSpec::with_dims(3, 3, 3).build().vertex_graph();
    let n = g.n();
    let pk = partition_kway(&g, n, 1);
    let pp = partition_pway(&g, n, 1);
    for p in [pk, pp] {
        let sizes = p.sizes();
        assert!(sizes.iter().all(|&s| s == 1), "{sizes:?}");
    }
}

#[test]
fn world_of_one_rank_collectives_are_identity() {
    let out = run_world(1, &MachineSpec::origin2000(), |rank| {
        let s = rank.allreduce_sum(&[1.5, -2.5]);
        let m = rank.allreduce_max_scalar(7.0);
        rank.barrier();
        (s, m)
    });
    assert_eq!(out[0].0, vec![1.5, -2.5]);
    assert_eq!(out[0].1, 7.0);
}

#[test]
fn empty_matrix_rows_are_tolerated_by_spmv() {
    // A matrix with empty rows (no entries at all in row 1).
    let mut t = TripletMatrix::new(3, 3);
    t.push(0, 0, 1.0);
    t.push(2, 2, 1.0);
    let a = t.to_csr();
    let mut y = vec![9.0; 3];
    a.spmv(&[1.0, 2.0, 3.0], &mut y);
    assert_eq!(y, vec![1.0, 0.0, 3.0]);
}

#[test]
fn bcsr_of_identity_roundtrips() {
    use petsc_fun3d_repro::sparse::bcsr::BcsrMatrix;
    let a = CsrMatrix::identity(12);
    for b in [1usize, 2, 3, 4, 6] {
        let ab = BcsrMatrix::from_csr(&a, b);
        let back = ab.to_csr();
        for i in 0..12 {
            assert_eq!(back.get(i, i), 1.0, "b={b}");
        }
    }
}

#[test]
fn zero_jitter_zero_grading_mesh_is_uniform() {
    let mut spec = BumpChannelSpec::with_dims(4, 4, 4);
    spec.jitter = 0.0;
    spec.grading = 0.0;
    spec.bump_height = 0.0;
    let m = spec.build();
    // All cells identical: dual volumes take few distinct values and the
    // total is the box volume.
    let expected = spec.length * spec.span * spec.height;
    assert!((m.total_volume() - expected).abs() < 1e-10);
}

#[test]
fn cache_with_single_set_is_fully_associative() {
    use petsc_fun3d_repro::memmodel::cache::{CacheConfig, SetAssocCache};
    let mut c = SetAssocCache::new(CacheConfig::fully_associative(256, 32));
    // 8 lines capacity: 8 distinct lines all fit.
    for i in 0..8u64 {
        c.access(i * 32);
    }
    for i in 0..8u64 {
        assert!(c.access(i * 32), "line {i} must still be resident");
    }
}
