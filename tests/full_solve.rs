//! End-to-end integration: the full ΨNKS stack solves Euler flow over the
//! bump channel, for both flow models, with different preconditioners.

use petsc_fun3d_repro::core::config::{CaseConfig, LayoutConfig};
use petsc_fun3d_repro::core::driver::run_case;
use petsc_fun3d_repro::core::problem::EulerProblem;
use petsc_fun3d_repro::euler::model::FlowModel;
use petsc_fun3d_repro::euler::residual::{Discretization, SpatialOrder};
use petsc_fun3d_repro::mesh::generator::BumpChannelSpec;
use petsc_fun3d_repro::partition::partition_kway;
use petsc_fun3d_repro::solver::gmres::GmresOptions;
use petsc_fun3d_repro::solver::pseudo::{
    solve_pseudo_transient, Forcing, PrecondSpec, PseudoTransientOptions,
};
use petsc_fun3d_repro::sparse::ilu::IluOptions;

fn nks(max_steps: usize) -> PseudoTransientOptions {
    PseudoTransientOptions {
        cfl0: 5.0,
        cfl_exponent: 1.2,
        cfl_max: 1e6,
        max_steps,
        target_reduction: 1e-8,
        krylov: GmresOptions {
            restart: 20,
            rtol: 1e-2,
            max_iters: 120,
            ..Default::default()
        },
        precond: PrecondSpec::Ilu(IluOptions::with_fill(1)),
        second_order_switch: None,
        matrix_free: false,
        line_search: true,
        bcsr_block: None,
        forcing: Forcing::Constant,
        pc_refresh: 1,
    }
}

#[test]
fn incompressible_flow_converges_to_steady_state() {
    let mut cfg = CaseConfig::small();
    cfg.nks = nks(60);
    let report = run_case(&cfg);
    assert!(
        report.history.converged,
        "reduction {:.2e} after {} steps",
        report.history.reduction(),
        report.history.nsteps()
    );
}

#[test]
fn compressible_flow_converges_to_steady_state() {
    let mut cfg = CaseConfig::small();
    cfg.mesh = BumpChannelSpec::with_dims(9, 6, 6);
    cfg.model = FlowModel::compressible();
    cfg.nks = nks(70);
    cfg.nks.cfl0 = 2.0;
    let report = run_case(&cfg);
    assert!(
        report.history.converged,
        "reduction {:.2e}",
        report.history.reduction()
    );
}

#[test]
fn schwarz_preconditioned_solve_converges() {
    let spec = BumpChannelSpec::with_dims(10, 7, 7);
    let mesh = spec.build();
    let disc = Discretization::new(
        &mesh,
        FlowModel::incompressible(),
        fun3d_sparse::layout::FieldLayout::Interlaced,
        SpatialOrder::First,
    );
    let graph = mesh.vertex_graph();
    let part = partition_kway(&graph, 4, 1);
    let ncomp = 4usize;
    let mut owned_sets: Vec<Vec<usize>> = vec![Vec::new(); 4];
    for (v, &p) in part.part.iter().enumerate() {
        for c in 0..ncomp {
            owned_sets[p as usize].push(v * ncomp + c);
        }
    }
    let mut problem = EulerProblem::new(disc);
    let mut q = problem.initial_state();
    let mut opts = nks(60);
    opts.precond = PrecondSpec::Schwarz {
        owned_sets,
        overlap: 1,
        ilu: IluOptions::with_fill(0),
        restricted: true,
    };
    let h = solve_pseudo_transient(&mut problem, &mut q, &opts);
    assert!(h.converged, "reduction {:.2e}", h.reduction());
}

#[test]
fn blocked_and_unblocked_operators_agree() {
    // Structural blocking is a storage change only: iteration-for-iteration
    // the Krylov solve must produce the same numbers.
    let run = |blocked: bool| {
        let mut cfg = CaseConfig::small();
        cfg.mesh = BumpChannelSpec::with_dims(8, 6, 6);
        cfg.layout = if blocked {
            LayoutConfig::tuned()
        } else {
            LayoutConfig {
                blocked: false,
                ..LayoutConfig::tuned()
            }
        };
        cfg.nks = nks(40);
        run_case(&cfg)
    };
    let r1 = run(false);
    let r2 = run(true);
    assert!(r1.history.converged && r2.history.converged);
    // Identical math: same step count and same per-step linear iterations.
    assert_eq!(r1.history.nsteps(), r2.history.nsteps());
    for (a, b) in r1.history.steps.iter().zip(&r2.history.steps) {
        assert_eq!(a.linear_iters, b.linear_iters, "step {}", a.step);
        assert!(
            (a.residual_norm - b.residual_norm).abs() <= 1e-9 * a.residual_norm.abs().max(1e-30),
            "step {}: {} vs {}",
            a.step,
            a.residual_norm,
            b.residual_norm
        );
    }
}

#[test]
fn second_order_continuation_converges_matrix_free() {
    let mut cfg = CaseConfig::small();
    cfg.mesh = BumpChannelSpec::with_dims(8, 6, 6);
    cfg.nks = nks(70);
    cfg.nks.second_order_switch = Some(1e-2);
    cfg.nks.matrix_free = true;
    cfg.nks.target_reduction = 1e-6;
    let report = run_case(&cfg);
    assert!(
        report.history.converged,
        "reduction {:.2e}",
        report.history.reduction()
    );
}

#[test]
fn block_ilu_preconditioned_solve_converges() {
    // The PETSc-FUN3D configuration once blocking is on: BCSR operator +
    // point-block ILU(0) preconditioner.
    let mut cfg = CaseConfig::small();
    cfg.mesh = BumpChannelSpec::with_dims(9, 6, 6);
    cfg.nks = nks(60);
    cfg.nks.precond = PrecondSpec::BlockIlu { block: 4 };
    let report = run_case(&cfg);
    assert!(
        report.history.converged,
        "reduction {:.2e}",
        report.history.reduction()
    );
}
