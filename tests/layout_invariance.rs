//! Integration: the Table 1 layout enhancements are *performance* changes
//! only — every combination must compute the same flow.

use petsc_fun3d_repro::core::config::{apply_orderings, CaseConfig, LayoutConfig};
use petsc_fun3d_repro::core::driver::run_case;
use petsc_fun3d_repro::core::problem::EulerProblem;
use petsc_fun3d_repro::euler::field::FieldVec;
use petsc_fun3d_repro::euler::model::FlowModel;
use petsc_fun3d_repro::euler::residual::{Discretization, SpatialOrder};
use petsc_fun3d_repro::mesh::generator::BumpChannelSpec;
use petsc_fun3d_repro::mesh::reorder::{EdgeOrdering, VertexOrdering};
use petsc_fun3d_repro::solver::gmres::GmresOptions;
use petsc_fun3d_repro::solver::pseudo::{Forcing, PrecondSpec, PseudoTransientOptions};
use petsc_fun3d_repro::sparse::ilu::IluOptions;
use petsc_fun3d_repro::sparse::layout::FieldLayout;

/// The residual norm of the initial state is a pure function of the mesh
/// geometry — not of the vertex numbering, edge ordering, or field layout.
#[test]
fn initial_residual_norm_is_ordering_invariant() {
    let base = BumpChannelSpec::with_dims(9, 6, 6).build();
    let mut norms = Vec::new();
    for (vord, eord) in [
        (VertexOrdering::Natural, EdgeOrdering::VertexSorted),
        (VertexOrdering::Random(3), EdgeOrdering::VectorColored),
        (VertexOrdering::ReverseCuthillMcKee, EdgeOrdering::Random(5)),
    ] {
        for layout in [FieldLayout::Interlaced, FieldLayout::Segregated] {
            let mesh = apply_orderings(base.clone(), vord, eord);
            let disc = Discretization::new(
                &mesh,
                FlowModel::compressible(),
                layout,
                SpatialOrder::First,
            );
            let q = disc.initial_state();
            let mut r = FieldVec::zeros(mesh.nverts(), disc.ncomp(), layout);
            let mut ws = disc.workspace();
            disc.residual(&q, &mut r, &mut ws);
            norms.push(disc.residual_norm(&r));
        }
    }
    let first = norms[0];
    for n in &norms {
        assert!(
            (n - first).abs() < 1e-9 * first.max(1.0),
            "norms differ: {norms:?}"
        );
    }
}

/// All six Table 1 rows converge to the same steady state (same final
/// reduction target), so the enhancements change cost, not answers.
#[test]
fn every_table1_layout_converges() {
    for (layout, flags) in LayoutConfig::table1_rows() {
        let cfg = CaseConfig {
            mesh: BumpChannelSpec::with_dims(8, 6, 6),
            model: FlowModel::incompressible(),
            layout,
            order: SpatialOrder::First,
            nks: PseudoTransientOptions {
                cfl0: 5.0,
                cfl_exponent: 1.2,
                cfl_max: 1e6,
                max_steps: 50,
                target_reduction: 1e-8,
                krylov: GmresOptions {
                    restart: 20,
                    rtol: 1e-2,
                    max_iters: 120,
                    ..Default::default()
                },
                precond: PrecondSpec::Ilu(IluOptions::with_fill(1)),
                second_order_switch: None,
                matrix_free: false,
                line_search: true,
                bcsr_block: None,
                forcing: Forcing::Constant,
                pc_refresh: 1,
            },
        };
        let report = run_case(&cfg);
        assert!(
            report.history.converged,
            "layout {flags:?}: reduction {:.2e}",
            report.history.reduction()
        );
    }
}

/// The Jacobian in segregated layout is the interlaced Jacobian under the
/// unknown permutation — same spectrum, same Frobenius norm.
#[test]
fn jacobian_is_layout_equivariant() {
    let mesh = BumpChannelSpec::with_dims(7, 5, 5).build();
    let ncomp = 4;
    let di = Discretization::new(
        &mesh,
        FlowModel::incompressible(),
        FieldLayout::Interlaced,
        SpatialOrder::First,
    );
    let ds = Discretization::new(
        &mesh,
        FlowModel::incompressible(),
        FieldLayout::Segregated,
        SpatialOrder::First,
    );
    let pi = EulerProblem::new(di);
    let ps = EulerProblem::new(ds);
    let qi = pi.initial_state();
    let qs = ps.initial_state();
    let ji = {
        use petsc_fun3d_repro::solver::op::PseudoTransientProblem;
        pi.jacobian(&qi)
    };
    let js = {
        use petsc_fun3d_repro::solver::op::PseudoTransientProblem;
        ps.jacobian(&qs)
    };
    // Permute the interlaced Jacobian into segregated ordering; entries must
    // match exactly.
    let perm = fun3d_sparse::layout::interlaced_to_segregated_perm(mesh.nverts(), ncomp);
    let ji_permuted = ji.permute_symmetric(&perm);
    assert_eq!(ji_permuted.nnz(), js.nnz());
    for i in 0..ji_permuted.nrows() {
        let ca = ji_permuted.row_cols(i);
        let cb = js.row_cols(i);
        assert_eq!(ca, cb, "row {i} pattern");
        for (va, vb) in ji_permuted.row_vals(i).iter().zip(js.row_vals(i)) {
            assert!((va - vb).abs() < 1e-12, "row {i}: {va} vs {vb}");
        }
    }
}
