//! Integration: the distributed (message-passing) linear algebra must
//! reproduce the sequential algebra bit-for-bit in iteration counts and to
//! rounding in solutions, on the real Euler Jacobian.

use petsc_fun3d_repro::core::dist::{
    build_plans_for_matrix, parallel_block_jacobi_solve, DistributedMatrix,
};
use petsc_fun3d_repro::euler::model::FlowModel;
use petsc_fun3d_repro::euler::residual::{Discretization, SpatialOrder};
use petsc_fun3d_repro::memmodel::machine::MachineSpec;
use petsc_fun3d_repro::mesh::generator::BumpChannelSpec;
use petsc_fun3d_repro::partition::partition_kway;
use petsc_fun3d_repro::solver::gmres::{gmres, GmresOptions};
use petsc_fun3d_repro::solver::op::CsrOperator;
use petsc_fun3d_repro::solver::precond::AdditiveSchwarz;
use petsc_fun3d_repro::sparse::csr::CsrMatrix;
use petsc_fun3d_repro::sparse::ilu::IluOptions;
use petsc_fun3d_repro::sparse::layout::FieldLayout;

fn euler_system() -> (CsrMatrix, Vec<f64>, Vec<u32>, usize) {
    let mesh = BumpChannelSpec::with_dims(9, 6, 6).build();
    let ncomp = 4;
    let disc = Discretization::new(
        &mesh,
        FlowModel::incompressible(),
        FieldLayout::Interlaced,
        SpatialOrder::First,
    );
    let q = disc.initial_state();
    let mut jac = disc.jacobian(&q);
    let sums = disc.wavespeed_sums(&q);
    let d: Vec<f64> = (0..mesh.nverts())
        .flat_map(|v| std::iter::repeat_n(sums[v], ncomp))
        .collect();
    jac.shift_diagonal_by(1.0 / 20.0, &d);
    let n = jac.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i % 23) as f64 - 11.0) / 11.0).collect();
    let nranks = 4;
    let part = partition_kway(&mesh.vertex_graph(), nranks, 5);
    let owner: Vec<u32> = part
        .part
        .iter()
        .flat_map(|&p| std::iter::repeat_n(p, ncomp))
        .collect();
    (jac, b, owner, nranks)
}

#[test]
fn distributed_gmres_matches_sequential_block_jacobi() {
    let (jac, b, owner, nranks) = euler_system();
    let n = jac.nrows();
    let opts = GmresOptions {
        restart: 20,
        rtol: 1e-8,
        max_iters: 3000,
        ..Default::default()
    };
    let ilu = IluOptions::with_fill(0);

    let owned_sets: Vec<Vec<usize>> = (0..nranks)
        .map(|r| (0..n).filter(|&i| owner[i] as usize == r).collect())
        .collect();
    let pc = AdditiveSchwarz::block_jacobi(&jac, &owned_sets, &ilu).unwrap();
    let mut x_seq = vec![0.0; n];
    let r_seq = gmres(&CsrOperator::new(&jac), &pc, &b, &mut x_seq, &opts);
    assert!(r_seq.converged);

    let report = parallel_block_jacobi_solve(
        &jac,
        &b,
        &owner,
        nranks,
        &MachineSpec::asci_red(),
        &ilu,
        &opts,
    );
    assert!(report.result.converged);
    assert_eq!(
        r_seq.iterations, report.result.iterations,
        "same math, same iteration count"
    );
    for (u, v) in x_seq.iter().zip(&report.x) {
        assert!((u - v).abs() < 1e-8, "{u} vs {v}");
    }
}

#[test]
fn distributed_spmv_matches_sequential_on_euler_jacobian() {
    let (jac, _, owner, nranks) = euler_system();
    let n = jac.nrows();
    let x: Vec<f64> = (0..n).map(|i| (0.01 * i as f64).sin()).collect();
    let mut y_ref = vec![0.0; n];
    jac.spmv(&x, &mut y_ref);

    let plans = build_plans_for_matrix(&jac, &owner, nranks);
    let outs =
        petsc_fun3d_repro::comm::world::run_world(nranks, &MachineSpec::cray_t3e(), |rank| {
            let mat = DistributedMatrix::from_plan(&jac, &plans[rank.id()]);
            let mut full = vec![0.0; mat.nowned() + mat.nghosts()];
            for (l, &g) in mat.owned_rows.iter().enumerate() {
                full[l] = x[g];
            }
            let mut y = vec![0.0; mat.nowned()];
            mat.spmv(rank, &mut full, &mut y, 9);
            (mat.owned_rows.clone(), y)
        });
    let mut count = 0;
    for (rows, y) in outs {
        for (l, &g) in rows.iter().enumerate() {
            assert!((y[l] - y_ref[g]).abs() < 1e-12, "row {g}");
            count += 1;
        }
    }
    assert_eq!(count, n, "every row computed exactly once");
}

#[test]
fn simulated_clock_decomposition_is_consistent() {
    let (jac, b, owner, nranks) = euler_system();
    let report = parallel_block_jacobi_solve(
        &jac,
        &b,
        &owner,
        nranks,
        &MachineSpec::asci_red(),
        &IluOptions::with_fill(0),
        &GmresOptions {
            restart: 20,
            rtol: 1e-6,
            max_iters: 2000,
            ..Default::default()
        },
    );
    assert!(report.sim_time > 0.0);
    // Each rank's accounted phases must not exceed its final clock (waits
    // and transfers are all included in `now`).
    for bd in &report.breakdowns {
        assert!(bd.compute > 0.0);
        assert!(bd.total() <= report.sim_time * 1.0001);
    }
    // Scatter volume should match the plans: every rank sent something.
    assert!(report.total_bytes_sent > 0.0);
}
