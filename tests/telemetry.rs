//! Cross-crate telemetry integration: instrumentation must not perturb the
//! numerics, the span tree must be internally consistent, and the paper's
//! efficiency identity must be derivable from registry numbers alone.

use petsc_fun3d_repro::core::efficiency::{efficiency_from_reports, scaling_point_from_report};
use petsc_fun3d_repro::core::parallel_nks::{solve_parallel_nks, ParallelNksOptions};
use petsc_fun3d_repro::core::problem::EulerProblem;
use petsc_fun3d_repro::euler::model::FlowModel;
use petsc_fun3d_repro::euler::residual::{Discretization, SpatialOrder};
use petsc_fun3d_repro::memmodel::machine::MachineSpec;
use petsc_fun3d_repro::mesh::generator::BumpChannelSpec;
use petsc_fun3d_repro::partition::partition_kway;
use petsc_fun3d_repro::solver::gmres::GmresOptions;
use petsc_fun3d_repro::solver::pseudo::{
    solve_pseudo_transient, solve_pseudo_transient_instrumented, Forcing, PrecondSpec,
    PseudoTransientOptions,
};
use petsc_fun3d_repro::sparse::ilu::IluOptions;
use petsc_fun3d_repro::sparse::layout::FieldLayout;
use petsc_fun3d_repro::telemetry::report::PerfReport;
use petsc_fun3d_repro::telemetry::{merge, Registry};

fn nks(max_steps: usize) -> PseudoTransientOptions {
    PseudoTransientOptions {
        cfl0: 5.0,
        cfl_exponent: 1.2,
        cfl_max: 1e6,
        max_steps,
        target_reduction: 1e-8,
        krylov: GmresOptions {
            restart: 20,
            rtol: 1e-2,
            max_iters: 120,
            ..Default::default()
        },
        precond: PrecondSpec::Ilu(IluOptions::with_fill(1)),
        second_order_switch: None,
        matrix_free: false,
        line_search: true,
        bcsr_block: None,
        forcing: Forcing::Constant,
        pc_refresh: 1,
    }
}

fn small_problem(mesh: &petsc_fun3d_repro::mesh::tet::TetMesh) -> (EulerProblem<'_>, Vec<f64>) {
    let disc = Discretization::new(
        mesh,
        FlowModel::incompressible(),
        FieldLayout::Interlaced,
        SpatialOrder::First,
    );
    let problem = EulerProblem::new(disc);
    let q = problem.initial_state();
    (problem, q)
}

#[test]
fn instrumentation_does_not_perturb_the_solve() {
    let opts = nks(12);
    let mesh = BumpChannelSpec::with_dims(8, 6, 6).build();
    let (mut p1, mut q1) = small_problem(&mesh);
    let plain = solve_pseudo_transient(&mut p1, &mut q1, &opts);
    let (mut p2, mut q2) = small_problem(&mesh);
    let reg = Registry::enabled(0);
    let instrumented = solve_pseudo_transient_instrumented(&mut p2, &mut q2, &opts, &reg);
    assert_eq!(plain.steps.len(), instrumented.steps.len());
    for (a, b) in plain.steps.iter().zip(&instrumented.steps) {
        // Bitwise identical: spans only read the clock, never the state.
        assert_eq!(
            a.residual_norm.to_bits(),
            b.residual_norm.to_bits(),
            "step {}",
            a.step
        );
        assert_eq!(a.linear_iters, b.linear_iters, "step {}", a.step);
    }
    assert_eq!(q1, q2);
}

#[test]
fn child_span_times_sum_to_at_most_the_parent() {
    let opts = nks(6);
    let mesh = BumpChannelSpec::with_dims(8, 6, 6).build();
    let (mut problem, mut q) = small_problem(&mesh);
    let reg = Registry::enabled(0);
    solve_pseudo_transient_instrumented(&mut problem, &mut q, &opts, &reg);
    let snap = reg.snapshot();
    let parent = snap.span("nks").expect("nks span recorded").total_s;
    let children: f64 = snap
        .spans
        .iter()
        .filter(|s| s.path.starts_with("nks/") && s.path.matches('/').count() == 1)
        .map(|s| s.total_s)
        .sum();
    assert!(children > 0.0, "no child spans under nks: {:?}", snap.spans);
    assert!(
        children <= parent * (1.0 + 1e-9),
        "children {children} > parent {parent}"
    );
    // The deep gmres spans nest under the krylov phase.
    assert!(snap.span("nks/krylov/gmres").is_some(), "{:?}", snap.spans);
}

#[test]
fn efficiency_identity_holds_from_registry_numbers() {
    // Run the real distributed solver at 1 and 2 ranks and derive the
    // Table-3 columns purely from the per-rank registries.
    let mesh = BumpChannelSpec::with_dims(7, 5, 5).build();
    let graph = mesh.vertex_graph();
    let machine = MachineSpec::asci_red();
    let opts = ParallelNksOptions {
        max_steps: 4,
        target_reduction: 0.0,
        ..Default::default()
    };
    let mut reports = Vec::new();
    for p in [1usize, 2] {
        let part = partition_kway(&graph, p, 3);
        let r = solve_parallel_nks(
            &mesh,
            FlowModel::incompressible(),
            &part.part,
            p,
            &machine,
            &opts,
        );
        let merged = merge(&r.telemetry);
        let mut perf = PerfReport::new("itest")
            .with_meta("nranks", p.to_string())
            .with_snapshot(&merged);
        perf.push_metric("nprocs", p as f64);
        // Iterations are global: the merged counter sums identical per-rank
        // counts, so normalize by the rank count.
        let its = merged.counter_total("linear_iters") / p as f64;
        perf.push_metric("linear_its", its.max(1.0));
        perf.push_metric("time_s", r.sim_time);
        reports.push(perf);
    }
    for perf in &reports {
        let pt = scaling_point_from_report(perf).expect("derivable scaling point");
        assert!(pt.time > 0.0 && pt.its > 0);
    }
    let rows = efficiency_from_reports(&reports);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].eta_overall, 1.0);
    for row in &rows {
        assert!(
            (row.eta_overall - row.eta_alg * row.eta_impl).abs() < 1e-12,
            "{row:?}"
        );
    }
}
